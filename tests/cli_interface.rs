//! End-to-end tests of the `atlas-sim` binary: the documented exit-code
//! map (0 success, 1 runtime failure, 2 usage/invalid config, 3 circuit
//! too small, 4 staging failed, 5 ILP budget exceeded, 6 invalid
//! plan/plan mismatch, 7 parse error), rejection of contradictory flag
//! combinations, plan-once `--sweep` runs, and determinism of the
//! measurement output across thread counts.

use std::process::{Command, Output};

fn atlas_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_atlas-sim"))
        .args(args)
        .output()
        .expect("failed to launch atlas-sim")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn successful_runs_exit_zero() {
    for args in [
        vec!["--family", "ghz", "-n", "8"],
        vec!["--family", "qft", "-n", "8", "--dry"],
        vec!["--family", "qft", "-n", "8", "--plan"],
        vec![
            "--family", "qaoa", "-n", "8", "--shots", "32", "--seed", "7",
        ],
        vec!["--family", "ghz", "-n", "8", "--expect", "ZIIIIIIZ"],
        // A seed with --noise (but no --shots) is well-formed: the seed
        // drives the trajectory draws of the --expect average.
        vec![
            "--family", "ghz", "-n", "8", "--seed", "3", "--noise", "0.05", "--expect", "ZIIIIIIZ",
        ],
        vec![
            "--family", "ghz", "-n", "8", "--seed", "3", "--noise", "0.05", "--shots", "16",
        ],
        // Forced backends on an all-Clifford family.
        vec!["--family", "ghz", "-n", "8", "--backend", "stabilizer"],
        vec!["--family", "ghz", "-n", "8", "--backend", "statevec"],
    ] {
        let out = atlas_sim(&args);
        assert_eq!(exit_code(&out), 0, "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn contradictory_flags_are_rejected_with_exit_2() {
    // Each case: (args, substring the error must mention).
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (
            vec!["--family", "qft", "-n", "8", "--dry", "--shots", "16"],
            "--dry",
        ),
        (
            vec![
                "--family", "qft", "-n", "8", "--dry", "--expect", "ZZZZZZZZ",
            ],
            "--dry",
        ),
        (
            vec!["--family", "qft", "-n", "8", "--dry", "--top", "4"],
            "--dry",
        ),
        (
            vec!["--family", "qft", "-n", "8", "--plan", "--shots", "16"],
            "--plan",
        ),
        (
            vec![
                "--family",
                "qft",
                "-n",
                "8",
                "--baseline",
                "qiskit",
                "--shots",
                "4",
            ],
            "--baseline",
        ),
        (
            // Seed without shots is now the config builder's InvalidConfig
            // (still a usage error at the CLI boundary).
            vec!["--family", "qft", "-n", "8", "--seed", "3"],
            "shots",
        ),
        (
            vec!["--family", "qft", "-n", "8", "--threads", "0"],
            "threads",
        ),
        (
            vec!["--family", "qft", "-n", "8", "--sweep", "2", "--dry"],
            "--dry",
        ),
        (
            vec!["--family", "qft", "-n", "8", "--sweep", "2", "--plan"],
            "--plan",
        ),
        (
            vec![
                "--family",
                "qft",
                "-n",
                "8",
                "--sweep",
                "2",
                "--baseline",
                "hyquas",
            ],
            "--baseline",
        ),
        (
            // Pauli width mismatch.
            vec!["--family", "ghz", "-n", "8", "--expect", "ZZZ"],
            "8",
        ),
        (vec!["--family", "qft", "-n", "8", "--bogus"], "--bogus"),
        (vec!["--shots"], "missing value"),
        (
            vec!["--family", "ghz", "-n", "8", "--backend", "bogus"],
            "backend",
        ),
        (
            // qaoa uses non-Clifford rotations: the tableau cannot run it.
            vec!["--family", "qaoa", "-n", "8", "--backend", "stabilizer"],
            "Clifford",
        ),
        (
            vec![
                "--family",
                "ghz",
                "-n",
                "8",
                "--backend",
                "stabilizer",
                "--dry",
            ],
            "--dry",
        ),
        (
            vec!["--family", "ghz", "-n", "8", "--trajectories", "4"],
            "--noise",
        ),
        (
            // --noise alone has nothing to report.
            vec!["--family", "ghz", "-n", "8", "--noise", "0.05"],
            "--noise",
        ),
        (
            vec![
                "--family", "ghz", "-n", "8", "--noise", "1.5", "--shots", "4",
            ],
            "noise",
        ),
    ];
    for (args, needle) in cases {
        let out = atlas_sim(&args);
        assert_eq!(exit_code(&out), 2, "{args:?} should be a usage error");
        assert!(
            stderr(&out).contains(needle),
            "{args:?}: error should mention '{needle}', got: {}",
            stderr(&out)
        );
    }
}

#[test]
fn over_budget_functional_requests_exit_ten() {
    // An over-budget circuit with measurement flags cannot silently
    // auto-dry; it gets the typed ResourceExhausted rejection (exit 10)
    // rather than a usage error or an allocator abort.
    for args in [
        vec!["--family", "qft", "-n", "30", "--shots", "4"],
        vec!["--family", "qft", "-n", "30", "--sweep", "2"],
        vec!["--family", "qft", "-n", "30", "--top", "4"],
    ] {
        let out = atlas_sim(&args);
        assert_eq!(
            exit_code(&out),
            10,
            "{args:?} should exit 10: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("memory") && stderr(&out).contains("budget"),
            "{args:?}: error should mention the memory budget, got: {}",
            stderr(&out)
        );
    }
}

#[test]
fn runtime_failures_exit_one() {
    for args in [
        vec!["--family", "nosuchfamily", "-n", "8"],
        vec!["--qasm", "/nonexistent/file.qasm"],
        vec!["-n", "8"], // neither --family nor --qasm
    ] {
        let out = atlas_sim(&args);
        assert_eq!(exit_code(&out), 1, "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn error_variants_map_to_distinct_exit_codes() {
    // CircuitTooSmall: n = 8 but L + G = 7 + log2(4 nodes) = 9.
    let too_small = atlas_sim(&[
        "--family", "ghz", "-n", "8", "-L", "7", "--nodes", "4", "--gpus", "2",
    ]);
    assert_eq!(exit_code(&too_small), 3, "{}", stderr(&too_small));
    assert!(
        stderr(&too_small).contains("too small"),
        "{}",
        stderr(&too_small)
    );

    // ParseError: a bad Pauli character in --expect, with its position.
    let parse = atlas_sim(&["--family", "ghz", "-n", "8", "--expect", "ZIQZZZZZ"]);
    assert_eq!(exit_code(&parse), 7, "{}", stderr(&parse));
    assert!(
        stderr(&parse).contains("position 2"),
        "parse error should carry the offending position: {}",
        stderr(&parse)
    );

    // Distinct variants, distinct codes (the CI smoke step diffs these).
    assert_ne!(exit_code(&too_small), exit_code(&parse));
}

#[test]
fn sweep_plans_once_and_is_deterministic_across_threads() {
    let run = |threads: &str| {
        let out = atlas_sim(&[
            "--family",
            "qaoa",
            "-n",
            "8",
            "--nodes",
            "2",
            "--gpus",
            "2",
            "-L",
            "5",
            "--sweep",
            "3",
            "--shots",
            "16",
            "--seed",
            "7",
            "--threads",
            threads,
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
        (stdout(&out), stderr(&out))
    };
    let (out1, err1) = run("1");
    // One plan, three executed points.
    assert!(
        err1.contains("planned once"),
        "sweep header missing:\n{err1}"
    );
    for i in 0..3 {
        assert!(out1.contains(&format!("point {i} :")), "{out1}");
    }
    // Different parameters ⇒ the seeded shots differ between points
    // (the sweep really re-parameterizes).
    let sections: Vec<&str> = out1.split("point ").collect();
    assert_eq!(sections.len(), 4);
    assert_ne!(
        sections[1], sections[2],
        "sweep points should produce different measurement output"
    );
    // stdout (measurements) is byte-identical across thread counts;
    // timings go to stderr.
    let (out8, _) = run("8");
    assert_eq!(out1, out8);
}

#[test]
fn seeded_shot_output_is_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = atlas_sim(&[
            "--family",
            "qaoa",
            "-n",
            "8",
            "--nodes",
            "2",
            "--gpus",
            "2",
            "-L",
            "5",
            "--shots",
            "64",
            "--seed",
            "7",
            "--threads",
            threads,
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
        stdout(&out)
    };
    let t1 = run("1");
    assert!(
        t1.contains("shots   : 64 (seed 7)"),
        "missing header:\n{t1}"
    );
    assert_eq!(t1, run("2"));
    assert_eq!(t1, run("8"));
}

/// Noisy trajectory sampling is keyed on `(seed, trajectory index)`
/// alone, so its aggregated shot output must be byte-identical across
/// thread counts *and* machine shapes.
#[test]
fn noisy_shot_output_is_identical_across_threads_and_shapes() {
    let run = |threads: &str, nodes: &str, gpus: &str, local: &str| {
        let out = atlas_sim(&[
            "--family",
            "ghz",
            "-n",
            "8",
            "--nodes",
            nodes,
            "--gpus",
            gpus,
            "-L",
            local,
            "--noise",
            "0.05",
            "--trajectories",
            "5",
            "--shots",
            "40",
            "--seed",
            "11",
            "--threads",
            threads,
        ]);
        assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
        stdout(&out)
    };
    let base = run("1", "2", "2", "5");
    assert!(
        base.contains("shots   : 40 over 5 trajectorie(s) (seed 11)"),
        "missing noisy header:\n{base}"
    );
    assert_eq!(base, run("2", "2", "2", "5"));
    assert_eq!(base, run("8", "2", "2", "5"));
    // A different shard layout may print a different banner, but the
    // measurement payload must not move.
    let measurement = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("shots") || l.starts_with("  |"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(measurement(&base), measurement(&run("4", "1", "1", "8")));
}

#[test]
fn expectation_output_reports_exact_ghz_values() {
    let out = atlas_sim(&[
        "--family",
        "ghz",
        "-n",
        "10",
        "--expect",
        "ZIIIIIIIIZ",
        "--expect",
        "XXXXXXXXXX",
        "--expect",
        "ZIIIIIIIII",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    // GHZ: edge ZZ correlator = 1, X^n stabilizer = 1, single Z = 0.
    assert!(text.contains("<ZIIIIIIIIZ> = 1.000000000"), "{text}");
    assert!(text.contains("<XXXXXXXXXX> = 1.000000000"), "{text}");
    assert!(text.contains("<ZIIIIIIIII> = 0.000000000"), "{text}");
}

#[test]
fn top_output_comes_from_the_sharded_engine() {
    // Multi-stage shape: the state stays permuted, --top must still print
    // logical bitstrings (GHZ's two branches).
    let out = atlas_sim(&[
        "--family", "ghz", "-n", "9", "--nodes", "2", "--gpus", "2", "-L", "6", "--top", "2",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("|000000000>  p = 0.500000"), "{text}");
    assert!(text.contains("|111111111>  p = 0.500000"), "{text}");
}

#[test]
fn profile_emits_stage_timing_json_lines_on_stderr() {
    let args = [
        "--family",
        "qft",
        "-n",
        "8",
        "--nodes",
        "2",
        "--gpus",
        "2",
        "-L",
        "5",
        "--profile",
    ];
    let out = atlas_sim(&args);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let err = stderr(&out);
    let lines: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("{\"stage\":"))
        .collect();
    // Multi-stage run: at least one compute step and one all-to-all.
    assert!(lines.len() >= 2, "expected per-stage JSON lines:\n{err}");
    for (i, l) in lines.iter().enumerate() {
        assert!(l.starts_with(&format!("{{\"stage\":{i},")), "{l}");
        for key in [
            "\"compute_secs\":",
            "\"comm_secs\":",
            "\"swap_secs\":",
            "\"bytes_intra\":",
            "\"bytes_inter\":",
        ] {
            assert!(l.contains(key), "missing {key} in {l}");
        }
        assert!(l.ends_with('}'), "{l}");
    }
    // A 2-node shape must report inter-node traffic in some transition.
    assert!(
        lines.iter().any(|l| !l.contains("\"bytes_inter\":0}")),
        "no inter-node bytes recorded:\n{err}"
    );
    // stdout is byte-identical with and without --profile.
    let quiet = atlas_sim(&args[..args.len() - 1]);
    assert_eq!(stdout(&out), stdout(&quiet));
    assert!(!stderr(&quiet).contains("{\"stage\":"));
}

#[test]
fn profile_works_on_dry_runs_and_contradicts_plan() {
    let out = atlas_sim(&[
        "--family",
        "su2random",
        "-n",
        "30",
        "-L",
        "27",
        "--dry",
        "--profile",
    ]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    assert!(stderr(&out).contains("{\"stage\":0,"), "{}", stderr(&out));

    let out = atlas_sim(&["--family", "qft", "-n", "8", "--plan", "--profile"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr(&out).contains("--profile"), "{}", stderr(&out));
}

/// The serve failure contract at the CLI layer: an over-budget job and
/// an already-expired deadline answer **in-band** at their stream
/// position (typed kind, `ok:false`), the surrounding jobs are served
/// normally, and the process still exits 0 — one bad job never aborts
/// the stream.
#[test]
fn serve_answers_failures_in_band_and_exits_zero() {
    use std::io::Write;
    use std::process::Stdio;

    let input = concat!(
        r#"{"id":"ok","tenant":"t","op":"execute","family":"ghz","n":8}"#,
        "\n",
        r#"{"id":"big","tenant":"t","op":"execute","family":"ghz","n":40}"#,
        "\n",
        r#"{"id":"late","tenant":"t","op":"execute","family":"ghz","n":8,"deadline_ms":0}"#,
        "\n",
        r#"{"op":"stats","id":"s"}"#,
        "\n",
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_atlas-sim"))
        .args(["serve", "-L", "5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to launch atlas-sim serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write job stream");
    let out = child.wait_with_output().expect("serve run");
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));

    let stdout = stdout(&out);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one response per line: {stdout}");
    assert!(
        lines[0].contains(r#""id":"ok""#) && lines[0].contains(r#""ok":true"#),
        "line 0: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""kind":"resource-exhausted""#),
        "line 1: {}",
        lines[1]
    );
    assert!(
        lines[2].contains(r#""deadline_exceeded":true"#),
        "line 2: {}",
        lines[2]
    );
    // The stats barrier accounts for all of it: the over-budget job was
    // rejected (never submitted), the expired one is deadline-exceeded.
    assert!(
        lines[3].contains(r#""submitted":2"#)
            && lines[3].contains(r#""rejected":1"#)
            && lines[3].contains(r#""deadline_exceeded":1"#),
        "line 3: {}",
        lines[3]
    );
}

/// Panic isolation at the CLI layer: with the fault harness armed at
/// rate 1 (every job panics at the worker site), every response is an
/// in-band `job-panicked` error, the pool survives each one, and the
/// exit code is still 0.
#[test]
fn serve_survives_injected_panics() {
    use std::io::Write;
    use std::process::Stdio;

    let input = concat!(
        r#"{"id":"p0","tenant":"t","op":"plan","family":"ghz","n":8}"#,
        "\n",
        r#"{"id":"p1","tenant":"u","op":"execute","family":"ghz","n":8}"#,
        "\n",
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_atlas-sim"))
        .args([
            "serve",
            "-L",
            "5",
            "--workers",
            "1",
            "--fault-seed",
            "1",
            "--fault-rate",
            "1000000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to launch atlas-sim serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write job stream");
    let out = child.wait_with_output().expect("serve run");
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let stdout = stdout(&out);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    for line in lines {
        assert!(
            line.contains(r#""kind":"job-panicked""#),
            "expected an in-band panic response: {line}"
        );
    }
    assert!(
        stderr(&out).contains("fault injection armed"),
        "stderr should announce the armed harness: {}",
        stderr(&out)
    );
}
