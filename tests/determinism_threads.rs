//! Thread-count determinism: the parallel shard execution engine must
//! produce **byte-identical** amplitude vectors no matter how many host
//! threads it runs on.
//!
//! This is a stronger property than the differential harness's 1e-9
//! tolerance — it holds because serial and parallel execution run the
//! same compiled shard programs, and every parallel kernel in
//! `atlas_statevec::parallel` performs the same floating-point operations
//! as its serial twin, merely distributed across threads (no cross-group
//! reductions anywhere in the engine).

mod common;

use atlas::core::noise::{self, NoisyOutcome};
use atlas::prelude::*;

/// Runs `circuit` on `spec` with the given thread count and returns the
/// final state.
fn run_with_threads(circuit: &Circuit, spec: MachineSpec, threads: usize) -> StateVector {
    let cfg = AtlasConfig {
        threads,
        ..AtlasConfig::for_validation()
    };
    common::run_atlas_with(circuit, spec, &cfg)
}

fn assert_byte_identical(a: &StateVector, b: &StateVector, label: &str) {
    assert_eq!(a.num_qubits(), b.num_qubits());
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "{label}: amplitude {i} differs between thread counts: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn one_and_eight_threads_are_byte_identical_on_regression_circuits() {
    for circuit in common::regression_circuits() {
        for spec in common::machine_shapes(circuit.num_qubits()) {
            let serial = run_with_threads(&circuit, spec, 1);
            let parallel = run_with_threads(&circuit, spec, 8);
            assert_byte_identical(
                &serial,
                &parallel,
                &format!("{} on {}", circuit.name(), common::shape_label(&spec)),
            );
        }
    }
}

/// Plans the noisy template of `circuit` on `spec` and runs the full
/// trajectory sweep with the given thread count.
fn run_noisy_with(circuit: &Circuit, spec: MachineSpec, threads: usize) -> NoisyOutcome {
    let cfg = AtlasConfig {
        threads,
        seed: 41,
        noise: 0.05,
        trajectories: 7,
        ..AtlasConfig::for_validation()
    };
    let planner = Planner::new(spec, CostModel::default(), cfg);
    let template = noise::noisy_template(circuit);
    let plan = planner.plan_backend(&template).expect("noisy plan");
    noise::run_noisy(&plan, &template, 96).expect("noisy sweep")
}

/// Noise trajectories are drawn from the splittable counter RNG, keyed
/// only by `(seed, trajectory index)` — so the aggregated shot counts
/// must be **byte-identical** across thread counts *and* across machine
/// shapes (the shard layout must not leak into the physics).
#[test]
fn noisy_trajectories_are_identical_across_threads_and_shapes() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let shapes = common::machine_shapes(circuit.num_qubits());
    let baseline = run_noisy_with(&circuit, shapes[0], 1);
    assert_eq!(baseline.trajectories, 7);
    assert_eq!(baseline.shots, 96);
    assert_eq!(
        baseline.counts.iter().map(|(_, c)| c).sum::<u64>(),
        96,
        "every shot must land in exactly one outcome bucket"
    );
    for spec in shapes {
        for threads in [1, 2, 8] {
            let got = run_noisy_with(&circuit, spec, threads);
            assert_eq!(
                baseline,
                got,
                "noisy outcome drifted at t={threads} on {}",
                common::shape_label(&spec)
            );
        }
    }
}

#[test]
fn intermediate_thread_counts_are_byte_identical() {
    // Shard-parallel (shards ≥ threads) and intra-shard fallback
    // (shards < threads) must agree with each other as well: 16 shards at
    // t = 2 exercises the first, a single shard at t = 8 the second.
    let circuit = atlas::circuit::generators::qaoa(9);
    let many_shards = MachineSpec {
        nodes: 4,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let single_shard = MachineSpec::single_gpu(9);
    for spec in [many_shards, single_shard] {
        let baseline = run_with_threads(&circuit, spec, 1);
        for t in [2, 3, 8] {
            let got = run_with_threads(&circuit, spec, t);
            assert_byte_identical(
                &baseline,
                &got,
                &format!("qaoa(9) t={t} on {}", common::shape_label(&spec)),
            );
        }
    }
}
