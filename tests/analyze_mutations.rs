//! Mutation tests for the `atlas-analyze` plan verifier: take a plan the
//! planner produced (which verifies cleanly), corrupt it in a targeted
//! way, and assert the verifier rejects it with a typed [`Violation`]
//! naming the exact invariant the mutation broke. Plus the effect-freedom
//! differential: running the verifier between two executions of the same
//! compiled plan must leave the output byte-identical.

use atlas::analyze::{verify_plan, verify_stage_programs, Invariant, Violation};
use atlas::core::config::AtlasConfig;
use atlas::core::exec::{build_stage_programs, FullPlan};
use atlas::machine::ShardOp;
use atlas::prelude::*;
use std::sync::Arc;

/// An 8-qubit QAOA circuit on a 2×2 machine with L=5: multi-stage,
/// multi-shard, with reshuffles and non-local qubits — every verifier
/// check path is exercised.
fn compiled() -> (Circuit, CompiledPlan) {
    let circuit = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let compiled = Planner::new(spec, CostModel::default(), AtlasConfig::for_validation())
        .plan(&circuit)
        .unwrap();
    (circuit, compiled)
}

fn plan_and_cost() -> (Circuit, FullPlan, CostModel) {
    let (circuit, compiled) = compiled();
    let cost = compiled.cost().clone();
    (circuit, compiled.into_plan(), cost)
}

/// Every mutation must produce a typed rejection, and the rejection must
/// survive the conversion into the public error type with its invariant
/// name intact (that is what `atlas-sim --analyze` and the serve
/// admission gate print).
fn assert_rejected(result: Result<(), Violation>, expect: Invariant) {
    let violation = result.expect_err("mutated plan must be rejected");
    assert_eq!(
        violation.invariant,
        expect,
        "wrong invariant: {violation} (expected {})",
        expect.name()
    );
    let err = AtlasError::from(violation.clone());
    assert_eq!(err.kind(), "invalid-plan");
    assert!(
        err.to_string().contains(expect.name()),
        "diagnostic must name the violated invariant '{}': {err}",
        expect.name()
    );
}

#[test]
fn pristine_plan_verifies() {
    let (circuit, plan, cost) = plan_and_cost();
    let report = verify_plan(&circuit, &plan, &cost).unwrap();
    assert!(plan.stages.len() > 1, "want a multi-stage plan");
    assert_eq!(report.stages, plan.stages.len());
    assert!(report.reshuffles > 0, "want at least one reshuffle");
    assert!(report.effects_materialized, "8 shards must be materialized");
}

#[test]
fn dropping_a_gate_from_a_kernel_breaks_kernel_cover() {
    let (circuit, mut plan, cost) = plan_and_cost();
    plan.stages[0].kernels[0].gates.remove(0);
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::KernelCover,
    );
}

#[test]
fn unassigning_a_gate_breaks_stage_cover() {
    let (circuit, mut plan, cost) = plan_and_cost();
    plan.stages[0].stage.gates.remove(0);
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::StageCover,
    );
}

#[test]
fn swapping_local_and_nonlocal_mapping_breaks_mapping_class() {
    let (circuit, mut plan, cost) = plan_and_cost();
    // Find a stage with a non-local qubit and swap its physical slot with
    // a local one: still a bijection, but both land outside their class
    // ranges.
    let k = plan
        .stages
        .iter()
        .position(|sp| {
            !sp.stage.partition.global.is_empty() || !sp.stage.partition.regional.is_empty()
        })
        .expect("L=5 on 8 qubits forces non-local qubits");
    let part = &plan.stages[k].stage.partition;
    let lq = part.local[0] as usize;
    let nq = *part.global.first().unwrap_or_else(|| &part.regional[0]) as usize;
    plan.stages[k].mapping.swap(lq, nq);
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::MappingClass,
    );
}

#[test]
fn corrupting_a_mapping_entry_breaks_bijection() {
    let (circuit, mut plan, cost) = plan_and_cost();
    plan.stages[0].mapping[1] = plan.stages[0].mapping[0];
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::MappingBijection,
    );
}

#[test]
fn perturbing_a_template_cost_breaks_template_consistency() {
    let (circuit, mut plan, cost) = plan_and_cost();
    plan.stages[0].templates[0].shm_ns += 1.0;
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::TemplateConsistency,
    );
}

#[test]
fn discounting_the_kernel_cost_breaks_clock_conservation() {
    let (circuit, mut plan, cost) = plan_and_cost();
    assert!(plan.stages[0].kernel_cost > 0.0);
    plan.stages[0].kernel_cost *= 0.5;
    assert_rejected(
        verify_plan(&circuit, &plan, &cost).map(drop),
        Invariant::ClockConservation,
    );
}

#[test]
fn escaping_qubit_in_a_shard_op_breaks_write_disjointness() {
    let (circuit, plan, _cost) = plan_and_cost();
    let l = plan.l;
    let num_shards = 1usize << (plan.n - l);
    let mut programs = build_stage_programs(&circuit, &plan.stages[0], l, num_shards);
    // Rewrite one fusion op's first qubit to physical position `l`: the
    // op's write set now reaches into the neighbour shard `s ^ (1 << 0)`.
    let mut corrupted = false;
    'outer: for program in programs.iter_mut() {
        for op in program.iter_mut() {
            if let ShardOp::Fusion { qubits, .. } = op {
                if !qubits.is_empty() {
                    Arc::make_mut(qubits)[0] = l;
                    corrupted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(corrupted, "stage 0 must contain a fusion op to corrupt");
    let violation = verify_stage_programs(&programs, l, 0)
        .map(drop)
        .expect_err("escaping write set must be rejected");
    assert_eq!(violation.invariant, Invariant::WriteDisjointness);
    assert!(
        violation.shard.is_some() && violation.op.is_some(),
        "effect violations must carry shard/op coordinates: {violation}"
    );
    assert_eq!(AtlasError::from(violation).kind(), "invalid-plan");
}

#[test]
fn pristine_stage_programs_have_disjoint_writes() {
    let (circuit, plan, _cost) = plan_and_cost();
    let l = plan.l;
    let num_shards = 1usize << (plan.n - l);
    for (k, sp) in plan.stages.iter().enumerate() {
        let programs = build_stage_programs(&circuit, sp, l, num_shards);
        verify_stage_programs(&programs, l, k).unwrap();
    }
}

/// The verifier is observation-only: running it between two executions of
/// the same compiled plan changes nothing, down to the amplitude bits.
#[test]
fn verifier_run_leaves_execution_byte_identical() {
    let (circuit, compiled) = compiled();
    let before = compiled.execute(&circuit).unwrap().state.unwrap();
    verify_plan(&circuit, compiled.plan(), compiled.cost()).unwrap();
    let after = compiled.execute(&circuit).unwrap().state.unwrap();
    assert_eq!(before.amplitudes().len(), after.amplitudes().len());
    for (x, y) in before.amplitudes().iter().zip(after.amplitudes()) {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "verifier must not perturb execution"
        );
    }
}
