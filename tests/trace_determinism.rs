//! Trace determinism: telemetry must observe, never perturb.
//!
//! Two properties, both load-bearing for the telemetry layer:
//!
//! 1. **Model outputs are byte-identical with tracing on and off.** The
//!    recorder reads wall clocks, but nothing it measures may flow back
//!    into amplitudes, samples or the model clock.
//! 2. **The deterministic subsequence of the trace is schedule-free.**
//!    [`det_signature`] — the sorted, timestamp-/lane-stripped rendering
//!    of every `det` event — must be identical across host thread counts
//!    and across serve worker counts, because every `det` event is keyed
//!    by model-level coordinates (stage, shard, submission order), never
//!    by which OS thread happened to record it.

use atlas::prelude::*;
use atlas::serve::{JobOutcome, JobRequest, ServeConfig, SessionPool};
use atlas::telemetry::det_signature;

fn spec() -> MachineSpec {
    MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    }
}

/// Runs `circuit` with a live recorder at the given thread count and
/// returns the canonical det signature plus the model-level outputs.
fn traced_run(circuit: &Circuit, threads: usize) -> (String, StateVector, Vec<u64>) {
    let recorder = Recorder::enabled();
    let cfg = AtlasConfig {
        threads,
        shots: 64,
        seed: 11,
        recorder: recorder.clone(),
        ..AtlasConfig::for_validation()
    };
    let out = simulate(circuit, spec(), CostModel::default(), &cfg, false).expect("simulate");
    assert_eq!(recorder.dropped(), 0, "trace overflowed its sink");
    (
        det_signature(&recorder.drain()),
        out.state.expect("functional run returns the state"),
        out.samples.expect("shots > 0 returns samples"),
    )
}

fn assert_byte_identical(a: &StateVector, b: &StateVector, label: &str) {
    assert_eq!(a.num_qubits(), b.num_qubits());
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "{label}: amplitude {i} differs: {x:?} vs {y:?}"
        );
    }
}

/// Property 2 for the plan/execute/sample pipeline: one circuit, three
/// thread counts, one det signature.
#[test]
fn det_signature_is_identical_across_thread_counts() {
    let circuit = atlas::circuit::generators::qaoa(7);
    let (baseline, base_state, base_samples) = traced_run(&circuit, 1);
    assert!(!baseline.is_empty(), "trace recorded no det events");
    // The signature covers every pipeline phase the recorder instruments.
    for name in [
        "plan.stage",
        "plan.kernelize",
        "kernel.apply",
        "machine.reshuffle",
        "machine.step",
        "stage.barrier",
        "sample.draw",
    ] {
        assert!(baseline.contains(name), "det signature lost '{name}'");
    }
    for threads in [2, 8] {
        let (sig, state, samples) = traced_run(&circuit, threads);
        assert_eq!(baseline, sig, "det signature drifted at t={threads}");
        assert_byte_identical(&base_state, &state, &format!("t={threads}"));
        assert_eq!(base_samples, samples, "samples drifted at t={threads}");
    }
}

/// Property 1: enabling the recorder changes nothing the model can see.
#[test]
fn outputs_are_byte_identical_with_tracing_on_and_off() {
    let circuit = atlas::circuit::generators::grover(7);
    let untraced_cfg = AtlasConfig {
        threads: 2,
        shots: 64,
        seed: 11,
        ..AtlasConfig::for_validation()
    };
    let untraced =
        simulate(&circuit, spec(), CostModel::default(), &untraced_cfg, false).expect("simulate");
    let (_, traced_state, traced_samples) = traced_run(&circuit, 2);
    assert_byte_identical(
        &untraced.state.expect("state"),
        &traced_state,
        "tracing on vs off",
    );
    assert_eq!(
        untraced.samples.expect("samples"),
        traced_samples,
        "samples differ with tracing enabled"
    );
    let retraced = simulate(
        &circuit,
        spec(),
        CostModel::default(),
        &AtlasConfig {
            recorder: Recorder::enabled(),
            ..untraced_cfg
        },
        false,
    )
    .expect("simulate");
    assert_eq!(
        untraced.report.total_secs.to_bits(),
        retraced.report.total_secs.to_bits(),
        "model clock differs with tracing enabled"
    );
}

/// One serve round: a fixed four-job stream over distinct circuits (so
/// each plans exactly once regardless of worker interleaving), submitted
/// up front so multiple workers genuinely race, then awaited in
/// submission order. Returns the det signature, the rendered outputs and
/// the final pool stats.
fn serve_round(workers: usize) -> (String, Vec<String>, atlas::serve::PoolStats) {
    use atlas::circuit::generators;
    let recorder = Recorder::enabled();
    let cfg = AtlasConfig {
        threads: 1,
        final_unpermute: true,
        recorder: recorder.clone(),
        ..AtlasConfig::default()
    };
    let pool = SessionPool::new(
        spec(),
        CostModel::default(),
        cfg,
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    )
    .expect("pool");
    let jobs: Vec<(&str, Circuit, JobRequest)> = vec![
        ("alice", generators::qaoa(7), JobRequest::Execute),
        ("bob", generators::ghz(8), JobRequest::Execute),
        (
            "alice",
            generators::grover(6),
            JobRequest::Sample { shots: 32, seed: 7 },
        ),
        ("carol", generators::clifford(8), JobRequest::Plan),
    ];
    let tickets: Vec<_> = jobs
        .into_iter()
        .map(|(tenant, circuit, req)| pool.submit(tenant, circuit, req).expect("submit"))
        .collect();
    let outputs: Vec<String> = tickets
        .into_iter()
        .map(|t| match t.wait().expect("job failed") {
            JobOutcome::Output(out) => format!("{out:?}"),
            JobOutcome::Cancelled => panic!("job unexpectedly cancelled"),
            JobOutcome::DeadlineExceeded => panic!("job unexpectedly hit a deadline"),
        })
        .collect();
    let stats = pool.shutdown();
    assert_eq!(recorder.dropped(), 0, "trace overflowed its sink");
    (det_signature(&recorder.drain()), outputs, stats)
}

/// Property 2 for the serve pool: worker count is a scheduling knob, so
/// neither the job outputs nor the det signature may depend on it —
/// `serve.job` spans are keyed by pool-assigned submission order, and
/// queue-wait timing is non-det by construction.
#[test]
fn serve_det_signature_is_identical_across_worker_counts() {
    let (base_sig, base_out, base_stats) = serve_round(1);
    assert!(
        base_sig.contains("serve.job"),
        "no serve.job spans in trace"
    );
    assert!(
        !base_sig.contains("serve.queue_wait"),
        "wall-clock queue wait leaked into the det signature"
    );
    let (sig, out, stats) = serve_round(4);
    assert_eq!(base_sig, sig, "det signature drifted at workers=4");
    assert_eq!(base_out, out, "job outputs drifted at workers=4");
    assert_eq!(base_stats.jobs_submitted, stats.jobs_submitted);
    assert_eq!(base_stats.jobs_completed, stats.jobs_completed);
    assert_eq!(base_stats.cache_misses, stats.cache_misses);
}
