//! Differential tests for the sharded measurement engine
//! (`atlas-sampler`): Pauli expectations against the dense reference
//! across the full `StagingAlgo` × `KernelAlgo` × machine-shape sweep,
//! byte-identical seeded sampling across thread counts and shard
//! layouts, and marginals / top outcomes without any state gather.
//!
//! Everything here runs with `final_unpermute = false`: the state stays
//! sharded and permuted in the machine's last-stage layout, and the
//! measurement engine must undo the permutation in index space.

mod common;

use atlas::prelude::*;
use atlas::sampler::PauliOp;
use common::*;

/// A measurement-oriented config: no final unpermute (the engine works
/// on the permuted shards), tight ILP budgets like the amplitude
/// harness.
fn measurement_cfg(staging: StagingAlgo, kernelizer: KernelAlgo, threads: usize) -> AtlasConfig {
    AtlasConfig {
        staging,
        kernelizer,
        threads,
        final_unpermute: false,
        ilp_node_limit: 200_000,
        ..AtlasConfig::default()
    }
}

fn run_measurements(circuit: &Circuit, spec: MachineSpec, cfg: &AtlasConfig) -> Measurements {
    let out = simulate(circuit, spec, CostModel::default(), cfg, false).expect("simulation failed");
    assert!(
        out.state.is_none(),
        "measurement path must not gather the state"
    );
    out.measurements
        .expect("functional runs carry measurements")
}

/// Dense-reference Pauli expectation by direct basis-state algebra.
fn dense_expectation(sv: &StateVector, p: &PauliString) -> f64 {
    let flip = (p.x_mask() | p.y_mask()) as usize;
    let sign = p.z_mask() | p.y_mask();
    let pref = match p.y_mask().count_ones() % 4 {
        0 => Complex64::ONE,
        1 => Complex64::I,
        2 => -Complex64::ONE,
        _ => -Complex64::I,
    };
    let amps = sv.amplitudes();
    let mut acc = Complex64::ZERO;
    for (x, &a) in amps.iter().enumerate() {
        let s = if (x as u64 & sign).count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        acc += amps[x ^ flip].conj() * a * s;
    }
    let z = pref * acc;
    assert!(z.im.abs() < 1e-10, "Pauli expectation must be real");
    z.re
}

/// A fixed suite of Pauli strings covering diagonal, purely off-diagonal
/// and mixed cases (with odd and even Y counts).
fn pauli_suite(n: u32) -> Vec<PauliString> {
    let all = |op: PauliOp| PauliString::from_ops(n, &(0..n).map(|q| (q, op)).collect::<Vec<_>>());
    vec![
        all(PauliOp::Z),
        all(PauliOp::X),
        PauliString::from_ops(n, &[(0, PauliOp::Z), (n - 1, PauliOp::Z)]),
        PauliString::from_ops(n, &[(1, PauliOp::X), (n - 2, PauliOp::Y)]),
        PauliString::from_ops(n, &[(0, PauliOp::Y), (2, PauliOp::Z), (n - 1, PauliOp::X)]),
        PauliString::from_ops(n, &[(n / 2, PauliOp::Y)]),
    ]
}

/// Acceptance criterion: Pauli expectations match the dense reference
/// within 1e-9 across every staging algorithm, kernelization algorithm
/// and machine shape — on the permuted sharded state.
#[test]
fn expectations_match_dense_across_algos_and_shapes() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let reference = simulate_reference(&circuit);
    let suite = pauli_suite(8);
    let want: Vec<f64> = suite
        .iter()
        .map(|p| dense_expectation(&reference, p))
        .collect();
    for staging in all_staging_algos() {
        for kernelizer in all_kernel_algos() {
            for spec in shapes_for(staging, 8) {
                let cfg = measurement_cfg(staging, kernelizer, 1);
                let m = run_measurements(&circuit, spec, &cfg);
                for (p, &w) in suite.iter().zip(&want) {
                    let got = m.expectation(p);
                    assert!(
                        (got - w).abs() < 1e-9,
                        "<{p}> under {staging:?} x {kernelizer:?} on {}: got {got}, want {w}",
                        shape_label(&spec),
                    );
                }
            }
        }
    }
}

/// Acceptance criterion: with a fixed seed, sampled bitstrings are
/// byte-identical across thread counts and across shard counts (machine
/// shapes with 1, 4, 8 and 16 shards).
#[test]
fn seeded_samples_identical_across_threads_and_shapes() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let mut baseline: Option<Vec<u64>> = None;
    for spec in machine_shapes(8) {
        for threads in [1usize, 2, 8] {
            let cfg = measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, threads);
            let m = run_measurements(&circuit, spec, &cfg);
            let samples = m.sample(128, 42);
            assert_eq!(samples.len(), 128);
            match &baseline {
                None => baseline = Some(samples),
                Some(b) => assert_eq!(
                    &samples,
                    b,
                    "samples diverged on {} with {threads} thread(s)",
                    shape_label(&spec)
                ),
            }
        }
    }
}

/// Sampling draws from the right distribution: a GHZ state only ever
/// measures all-zeros or all-ones, in roughly equal proportion.
#[test]
fn ghz_shots_hit_only_the_two_branches() {
    let circuit = atlas::circuit::generators::ghz(10);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 7,
    };
    let cfg = measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, 1);
    let m = run_measurements(&circuit, spec, &cfg);
    let counts = m.sample_counts(2048, 9);
    assert_eq!(counts.len(), 2, "GHZ has exactly two outcomes: {counts:?}");
    let all_ones = (1u64 << 10) - 1;
    for &(bits, c) in &counts {
        assert!(bits == 0 || bits == all_ones, "impossible outcome {bits:b}");
        // Binomial(2048, 1/2): 6σ ≈ 136.
        assert!(
            (c as i64 - 1024).abs() < 160,
            "branch {bits:b} count {c} too far from 1024"
        );
    }
}

/// Marginals and per-outcome probabilities agree with the dense
/// reference on a multi-stage, permuted layout.
#[test]
fn marginals_and_probabilities_match_reference() {
    let circuit = Family::Qft.generate(9);
    let reference = simulate_reference(&circuit);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    let cfg = measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, 1);
    let m = run_measurements(&circuit, spec, &cfg);
    for qubits in [vec![0u32], vec![8, 0], vec![3, 1, 7]] {
        let dist = m.marginal(&qubits);
        assert_eq!(dist.len(), 1 << qubits.len());
        for (v, &got) in dist.iter().enumerate() {
            let want: f64 = (0..512u64)
                .filter(|x| {
                    qubits
                        .iter()
                        .enumerate()
                        .all(|(t, &q)| (x >> q) & 1 == (v as u64 >> t) & 1)
                })
                .map(|x| reference.probability(x))
                .sum();
            assert!(
                (got - want).abs() < 1e-9,
                "marginal {qubits:?} bin {v}: got {got}, want {want}"
            );
        }
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
    for x in [0u64, 1, 255, 256, 511] {
        assert!((m.probability(x) - reference.probability(x)).abs() < 1e-9);
    }
}

/// `top` matches the dense selector exactly (indices and order) on a
/// state with many exact probability ties — without gathering.
#[test]
fn top_outcomes_match_dense_selector_with_ties() {
    let circuit = atlas::circuit::generators::grover(6);
    let reference = simulate_reference(&circuit);
    let spec = MachineSpec {
        nodes: 1,
        gpus_per_node: 4,
        local_qubits: 4,
    };
    let cfg = measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, 2);
    let m = run_measurements(&circuit, spec, &cfg);
    // The unambiguous winner (Grover's marked state) matches the dense
    // reference; the remaining outcomes tie up to floating-point noise,
    // so the selector is validated against this run's own probabilities
    // with the pinned order (descending p, ascending index).
    assert_eq!(m.top(1)[0].0, reference.top_probabilities(1)[0].0);
    let mut own: Vec<(u64, f64)> = (0..64u64)
        .map(|x| (x, m.probability(x)))
        .filter(|&(_, p)| p > atlas::qmath::EPS)
        .collect();
    own.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for k in [1usize, 5, 20] {
        let got = m.top(k);
        assert_eq!(
            got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            own[..k.min(own.len())]
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            "top-{k} selection diverged from the pinned order"
        );
        for ((_, gp), (_, wp)) in got.iter().zip(&own) {
            assert_eq!(gp.to_bits(), wp.to_bits(), "top-{k} probability drifted");
        }
    }
}

/// Expectations and samples are identical whether the run unpermuted at
/// the end or left the state in the final stage layout — the index-space
/// unpermutation is exact.
#[test]
fn permuted_and_unpermuted_runs_agree() {
    let circuit = Family::Su2Random.generate(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let permuted = run_measurements(
        &circuit,
        spec,
        &measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, 1),
    );
    let mut cfg = measurement_cfg(StagingAlgo::IlpSearch, KernelAlgo::Dp, 1);
    cfg.final_unpermute = true;
    let out = simulate(&circuit, spec, CostModel::default(), &cfg, false).unwrap();
    let unpermuted = out.measurements.unwrap();
    for p in pauli_suite(8) {
        assert!((permuted.expectation(&p) - unpermuted.expectation(&p)).abs() < 1e-9);
    }
    assert_eq!(permuted.sample(64, 5), unpermuted.sample(64, 5));
}
