//! Public-API surface snapshot for `atlas-core` and `atlas-sampler`.
//!
//! Extracts every top-level `pub` item declaration from the two crates'
//! sources and compares the result against the checked-in snapshot
//! `tests/api_surface.txt`. A session-API refactor (adding, removing or
//! renaming exported items) must update the snapshot in the same
//! commit, so the public surface can never drift silently.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_API_SURFACE=1 cargo test --test api_surface
//! ```
//!
//! The extractor is deliberately simple — column-zero `pub` items only
//! (methods inside `impl` blocks are indented, `#[cfg(test)]` modules
//! are indented or excluded by file walk order) — which is exactly the
//! granularity re-exports and module layout changes show up at.

use std::fs;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/api_surface.txt");
const CRATES: &[&str] = &[
    "crates/analyze",
    "crates/core",
    "crates/sampler",
    "crates/serve",
    "crates/stabilizer",
    "crates/telemetry",
];

/// Recursively collects `.rs` files under `dir`, sorted for stability.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    out
}

/// One normalized declaration per top-level `pub` item of a file:
/// the declaration head, truncated before bodies/signatures/values.
fn declarations(source: &str) -> Vec<String> {
    const KINDS: &[&str] = &[
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub mod ",
        "pub use ",
        "pub const ",
        "pub static ",
    ];
    let mut out = Vec::new();
    for line in source.lines() {
        // Top-level items only: `impl` methods and test-module items are
        // indented.
        if line.starts_with(char::is_whitespace) {
            continue;
        }
        let Some(kind) = KINDS.iter().find(|k| line.starts_with(**k)) else {
            continue;
        };
        let decl = match *kind {
            // Signatures and bodies are implementation detail at this
            // granularity; the item's existence and name are the API.
            "pub fn " => line.split('(').next().unwrap(),
            "pub const " | "pub static " | "pub type " => line.split(':').next().unwrap(),
            "pub struct " | "pub enum " | "pub trait " => {
                line.trim_end_matches('{').split('<').next().unwrap()
            }
            // `pub mod x;` / `pub use a::b::{C, D};` — the whole line is
            // the declaration (re-export lists are kept single-line in
            // this workspace).
            _ => line,
        };
        out.push(decl.trim_end().trim_end_matches(';').to_string());
    }
    out
}

fn current_surface() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut lines = Vec::new();
    for krate in CRATES {
        for file in rust_files(&root.join(krate).join("src")) {
            let rel = file.strip_prefix(root).unwrap().display().to_string();
            let source = fs::read_to_string(&file).unwrap();
            for decl in declarations(&source) {
                lines.push(format!("{rel}: {decl}"));
            }
        }
    }
    lines.join("\n") + "\n"
}

#[test]
fn public_api_surface_matches_snapshot() {
    let got = current_surface();
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        fs::write(SNAPSHOT, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(SNAPSHOT).expect(
        "tests/api_surface.txt missing — run UPDATE_API_SURFACE=1 cargo test --test api_surface",
    );
    if got != want {
        let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
        let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
        let added: Vec<&&str> = got_set.difference(&want_set).collect();
        let removed: Vec<&&str> = want_set.difference(&got_set).collect();
        panic!(
            "public API surface of atlas-core/atlas-sampler changed.\n\
             added ({}):\n  {}\nremoved ({}):\n  {}\n\
             If intentional, regenerate the snapshot:\n  \
             UPDATE_API_SURFACE=1 cargo test --test api_surface",
            added.len(),
            added
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
            removed.len(),
            removed
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
        );
    }
}

/// The snapshot itself must mention the session API's tentpole exports —
/// a guard against someone "fixing" a surface break by deleting the
/// entries instead of keeping the API.
#[test]
fn snapshot_contains_session_api() {
    let want = fs::read_to_string(SNAPSHOT).expect("snapshot present");
    for needle in [
        "pub struct Planner",
        "pub struct CompiledPlan",
        "pub struct Execution",
        "pub struct CircuitFingerprint",
        "pub fn staging_invocations",
        "pub struct AtlasConfigBuilder",
        "pub fn simulate",
        "pub trait SimulatorBackend",
        "pub struct Tableau",
        "pub enum BackendKind",
        // The telemetry layer's load-bearing exports: the recorder handle
        // AtlasConfig carries, the unified counter registry, the export
        // formats, and the cross-schedule determinism witness.
        "pub struct Recorder",
        "pub struct MetricsRegistry",
        "pub enum TraceFormat",
        "pub struct TraceMeta",
        "pub fn det_signature",
        "pub enum JobLine",
        "pub fn render_stats",
    ] {
        assert!(
            want.contains(needle),
            "snapshot lost the session API item '{needle}'"
        );
    }
}
