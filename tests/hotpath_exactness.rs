//! Byte-exactness of the specialized execution hot paths against their
//! in-tree generic oracles.
//!
//! The layout-aware kernels in `atlas_statevec::apply` (unrolled `k ≤ 2`,
//! contiguous low-window chunks, scratch-cached gather) and the
//! block-copy relayout in `atlas_machine` are *replacements* for generic
//! code on the innermost `2^n` sweep — they are only admissible because
//! they perform the identical floating-point operations in the identical
//! order. These properties pin that down to the bit: any rounding
//! difference at all is a failure, not a tolerance question. That is also
//! the property that keeps thread-count determinism intact, because the
//! serial and parallel twins are free to take different forms.

use atlas::machine::{CostModel, Machine, MachineSpec};
use atlas::prelude::*;
use atlas::qmath::{Complex64, Matrix, QubitPermutation};
use atlas::statevec::{
    apply_batched, apply_gate, apply_matrix, apply_matrix_generic, apply_matrix_parallel,
    fuse_gates, simulate_reference, StateVector,
};
use proptest::prelude::*;

/// Deterministic dense state from a seed: H/RZ/T walls with seeded angles
/// plus an entangling ladder.
fn dense_state(n: u32, seed: u64) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q)
            .rz(0.077 * ((seed % 97) as f64 + q as f64 + 1.0), q)
            .t(q);
    }
    for q in 1..n {
        c.cx(q - 1, q);
    }
    simulate_reference(&c)
}

/// A dense-ish unitary over `qs` from a seeded circuit on those qubits.
fn seeded_unitary(n: u32, qs: &[u32], seed: u64) -> Matrix {
    let mut kc = Circuit::new(n);
    for (i, &q) in qs.iter().enumerate() {
        kc.h(q).rz(0.31 + (seed % 13) as f64 * 0.17 + i as f64, q);
        if i > 0 {
            kc.cx(qs[i - 1], q);
        }
    }
    fuse_gates(qs, kc.gates())
}

/// Picks `k` distinct qubits below `n` from a seed, in a seed-dependent
/// (not necessarily sorted) order.
fn qubit_subset(n: u32, k: usize, seed: u64) -> Vec<u32> {
    let mut all: Vec<u32> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..all.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        all.swap(i, (s >> 33) as usize % (i + 1));
    }
    all.truncate(k);
    all
}

fn assert_bits_eq(a: &StateVector, b: &StateVector, label: &str) {
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "{label}: amplitude {i}: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dispatched `apply_matrix` (and its thread-parallel twin) are
    /// byte-identical to the generic oracle for every k = 1..=5, across
    /// contiguous (low-window) and strided qubit subsets in random order.
    #[test]
    fn apply_matrix_fast_paths_match_generic_bitwise(
        n in 6u32..11,
        k in 1usize..6,
        seed in any::<u64>(),
        contiguous in any::<bool>(),
    ) {
        let k = k.min(n as usize);
        let qs: Vec<u32> = if contiguous {
            // Low window {0..k} in seed-dependent order.
            qubit_subset(k as u32, k, seed)
        } else {
            qubit_subset(n, k, seed)
        };
        let m = seeded_unitary(n, &qs, seed);
        let base = dense_state(n, seed);

        let mut fast = base.clone();
        apply_matrix(fast.amplitudes_mut(), &qs, &m);
        let mut generic = base.clone();
        apply_matrix_generic(generic.amplitudes_mut(), &qs, &m);
        assert_bits_eq(&fast, &generic, &format!("serial qs={qs:?}"));

        let mut par = base.clone();
        apply_matrix_parallel(par.amplitudes_mut(), &qs, &m, 4);
        assert_bits_eq(&par, &generic, &format!("parallel qs={qs:?}"));
    }

    /// Dispatched `apply_permutation` matches its generic oracle bitwise
    /// over random in-kernel permutations with random phases.
    #[test]
    fn apply_permutation_fast_paths_match_generic_bitwise(
        n in 6u32..11,
        k in 1usize..5,
        seed in any::<u64>(),
        contiguous in any::<bool>(),
    ) {
        let k = k.min(n as usize);
        let qs: Vec<u32> = if contiguous {
            qubit_subset(k as u32, k, seed)
        } else {
            qubit_subset(n, k, seed)
        };
        let dim = 1usize << k;
        // Seeded permutation of the kernel basis + seeded unit phases.
        let dst: Vec<u32> = qubit_subset(dim as u32, dim, seed ^ 0xABCD);
        let phase: Vec<Complex64> = (0..dim)
            .map(|x| Complex64::cis(0.2 * x as f64 + (seed % 31) as f64))
            .collect();
        let base = dense_state(n, seed);

        let mut fast = base.clone();
        atlas::statevec::apply::apply_permutation(fast.amplitudes_mut(), &qs, &dst, &phase);
        let mut generic = base.clone();
        atlas::statevec::apply::apply_permutation_generic(
            generic.amplitudes_mut(), &qs, &dst, &phase,
        );
        assert_bits_eq(&fast, &generic, &format!("perm qs={qs:?} dst={dst:?}"));
    }

    /// Scratch-arena `apply_controlled_matrix` matches its generic oracle
    /// bitwise.
    #[test]
    fn apply_controlled_matrix_matches_generic_bitwise(
        n in 6u32..11,
        kc in 1usize..3,
        kt in 1usize..3,
        seed in any::<u64>(),
    ) {
        let all = qubit_subset(n, kc + kt, seed);
        let (controls, targets) = all.split_at(kc);
        let m = seeded_unitary(n, targets, seed);
        let base = dense_state(n, seed);

        let mut fast = base.clone();
        atlas::statevec::apply::apply_controlled_matrix(
            fast.amplitudes_mut(), controls, targets, &m,
        );
        let mut generic = base.clone();
        atlas::statevec::apply::apply_controlled_matrix_generic(
            generic.amplitudes_mut(), controls, targets, &m,
        );
        assert_bits_eq(&fast, &generic, &format!("ctrl {controls:?}->{targets:?}"));
    }

    /// The compiled batched path is byte-identical to gathering the batch
    /// and applying each remapped gate through `apply_gate` (the shape of
    /// the pre-refactor implementation).
    #[test]
    fn apply_batched_matches_gatherwise_reference_bitwise(
        n in 4u32..9,
        seed in any::<u64>(),
    ) {
        let b = 3.min(n as usize);
        let active = qubit_subset(n, b, seed);
        let mut kernel = Circuit::new(n);
        kernel
            .h(active[0])
            .rz(0.4 + (seed % 7) as f64, active[1 % b])
            .cx(active[0], active[1 % b])
            .t(active[b - 1])
            .cp(0.9, active[b - 1], active[0]);
        let base = dense_state(n, seed);

        let mut fast = base.clone();
        apply_batched(fast.amplitudes_mut(), &active, kernel.gates());

        // Reference: explicit gather → per-gate apply_gate → scatter.
        let mut reference = base.clone();
        let mut sorted = active.clone();
        sorted.sort_unstable();
        let dim = 1usize << b;
        let offsets: Vec<u64> = (0..dim as u64)
            .map(|x| atlas::qmath::deposit_bits(x, &sorted))
            .collect();
        let remapped: Vec<Gate> = kernel
            .gates()
            .iter()
            .map(|g| {
                let local: Vec<u32> = g
                    .qubits
                    .iter()
                    .map(|q| sorted.iter().position(|&aq| aq == q).unwrap() as u32)
                    .collect();
                Gate::new(g.kind, &local)
            })
            .collect();
        let amps = reference.amplitudes_mut();
        let mut buf = vec![Complex64::ZERO; dim];
        for g in 0..(amps.len() >> b) as u64 {
            let base_idx = atlas::qmath::insert_bits(g, &sorted);
            for (x, off) in offsets.iter().enumerate() {
                buf[x] = amps[(base_idx | off) as usize];
            }
            for gate in &remapped {
                apply_gate(&mut buf, gate);
            }
            for (x, off) in offsets.iter().enumerate() {
                amps[(base_idx | off) as usize] = buf[x];
            }
        }
        assert_bits_eq(&fast, &reference, &format!("batched {active:?}"));
    }

    /// The block-copy relayout engine is byte-identical to the
    /// per-amplitude scatter oracle for arbitrary permutations and flips —
    /// covering the shard-local in-place path, the pure relabel
    /// (handle-shuffle) path, and the general ping-pong path.
    #[test]
    fn permute_state_blocks_match_scatter_bitwise(
        seed in any::<u64>(),
        flip_seed in any::<u64>(),
        steps in 1usize..4,
    ) {
        let n = 8u32;
        let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: 5 };
        let reference = dense_state(n, seed);
        let mut blocks = Machine::with_state(spec, CostModel::default(), &reference);
        let mut scatter = Machine::with_state(spec, CostModel::default(), &reference);
        // Chain several transitions so ping-pong reuse (not just the
        // first, freshly-allocated pass) is exercised.
        let mut s = seed | 1;
        for step in 0..steps {
            let mut map: Vec<u32> = (0..n).collect();
            for i in (1..map.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                map.swap(i, (s >> 33) as usize % (i + 1));
            }
            let perm = QubitPermutation::from_map(map);
            let flip = (flip_seed.rotate_left(step as u32 * 13)) & ((1u64 << n) - 1);
            blocks.permute_state(&perm, flip);
            scatter.permute_state_scatter(&perm, flip);
        }
        let a = blocks.gather_state();
        let b = scatter.gather_state();
        assert_bits_eq(&a, &b, "relayout");
        // Cost accounting must agree too (shared charge helper).
        let (ra, rb) = (blocks.report(), scatter.report());
        prop_assert_eq!(ra.bytes_intra, rb.bytes_intra);
        prop_assert_eq!(ra.bytes_inter, rb.bytes_inter);
        prop_assert!((ra.comm_secs - rb.comm_secs).abs() < 1e-15);
    }

    /// Shard-local and relabel-only transitions (the in-place and
    /// handle-shuffle fast paths) also match the scatter oracle.
    #[test]
    fn local_and_relabel_permutations_match_scatter_bitwise(
        seed in any::<u64>(),
        local_flip in any::<u64>(),
        high_flip in any::<u64>(),
    ) {
        let n = 8u32;
        let l = 5u32;
        let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: l };
        let reference = dense_state(n, seed);

        // Low-closed permutation: shuffle bits 0..l and l..n separately.
        let mut map: Vec<u32> = (0..n).collect();
        let mut s = seed | 1;
        for range in [0..l as usize, l as usize..n as usize] {
            let lo = range.start;
            for i in (lo + 1..range.end).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                map.swap(i, lo + (s >> 33) as usize % (i - lo + 1));
            }
        }
        let perm = QubitPermutation::from_map(map);
        let flip = (local_flip & ((1 << l) - 1)) | (high_flip & ((1 << n) - (1 << l)));
        let mut blocks = Machine::with_state(spec, CostModel::default(), &reference);
        let mut scatter = Machine::with_state(spec, CostModel::default(), &reference);
        blocks.permute_state(&perm, flip);
        scatter.permute_state_scatter(&perm, flip);
        assert_bits_eq(&blocks.gather_state(), &scatter.gather_state(), "low-closed");

        // Pure relabel: identity permutation, only high flip bits.
        let relabel_flip = high_flip & ((1 << n) - (1 << l));
        let mut blocks = Machine::with_state(spec, CostModel::default(), &reference);
        let mut scatter = Machine::with_state(spec, CostModel::default(), &reference);
        blocks.permute_state(&QubitPermutation::identity(n as usize), relabel_flip);
        scatter.permute_state_scatter(&QubitPermutation::identity(n as usize), relabel_flip);
        assert_bits_eq(&blocks.gather_state(), &scatter.gather_state(), "relabel");
    }
}
