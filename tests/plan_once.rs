//! Proof that plan-once/run-many is real: an N-point parameter sweep
//! through the session API invokes the staging solver (the expensive
//! PARTITION phase) exactly once.
//!
//! This lives in its own integration-test binary — and therefore its
//! own process — because `atlas_core::staging::staging_invocations()`
//! is a process-global counter: unrelated tests planning concurrently
//! in the same binary would race it.

use atlas::core::staging::staging_invocations;
use atlas::prelude::*;

#[test]
fn n_point_sweep_plans_exactly_once() {
    let base = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let planner = Planner::new(spec, CostModel::default(), AtlasConfig::default());

    let before_plan = staging_invocations();
    let compiled = planner.plan(&base).unwrap();
    assert_eq!(
        staging_invocations() - before_plan,
        1,
        "plan() runs the staging solver exactly once"
    );

    // An 8-point sweep: same fingerprint per point, zero further
    // staging-solver invocations.
    let fingerprint = *compiled.fingerprint();
    let before_sweep = staging_invocations();
    for i in 0..8 {
        let point = base.map_params(|_, _, p| p + 0.2 * i as f64);
        assert_eq!(
            CircuitFingerprint::of(&point),
            fingerprint,
            "point {i}: re-parameterization must preserve the fingerprint"
        );
        let run = compiled.execute(&point).unwrap();
        assert!((run.measurements.total_norm() - 1.0).abs() < 1e-9);
    }
    assert_eq!(
        staging_invocations(),
        before_sweep,
        "execute() must never re-stage"
    );

    // The one-shot shim, by contrast, pays planning on every call.
    let before_shim = staging_invocations();
    for _ in 0..2 {
        simulate(
            &base,
            spec,
            CostModel::default(),
            &AtlasConfig::default(),
            false,
        )
        .unwrap();
    }
    assert_eq!(
        staging_invocations() - before_shim,
        2,
        "the simulate() shim plans per call — the sweep API exists for a reason"
    );
}
