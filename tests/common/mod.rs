//! Shared differential-correctness harness for the integration tests.
//!
//! Three ingredients every suite reuses:
//!
//! * [`arb_circuit`] — a proptest strategy generating arbitrary
//!   well-formed circuits over the full gate alphabet;
//! * the configuration space — [`all_staging_algos`], [`all_kernel_algos`]
//!   and [`machine_shapes`] enumerate every `StagingAlgo`, every
//!   `KernelAlgo` and a ladder of machine splits (single GPU, intra-node,
//!   inter-node, many-shard) so tests can sweep the full cross product;
//! * [`assert_matches_reference`] — runs the hierarchical pipeline under
//!   one configuration and asserts amplitude-level agreement with the
//!   dense reference simulator, with a diagnostic that names the exact
//!   (circuit, algo, shape) combination on failure.
//!
//! Fixed-seed regression circuits live in [`regression_circuits`]: GHZ,
//! QAOA and Grover from `circuit::generators`, whose internal seeding is
//! deterministic, so a failing combination reproduces exactly.

// Each integration-test binary compiles this module separately and uses a
// different slice of it.
#![allow(dead_code)]

use atlas::prelude::*;
use proptest::prelude::*;

/// Picks `k` distinct qubits out of `n` from an index seed.
fn pick_qubits(n: u32, k: usize, seed: u64) -> Vec<u32> {
    let mut qs: Vec<u32> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..qs.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        qs.swap(i, j);
    }
    qs.truncate(k);
    qs
}

/// Strategy: one random gate over `n` qubits.
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    (0usize..18, any::<u64>(), -3.0f64..3.0).prop_map(move |(kind_idx, seed, theta)| {
        use GateKind::*;
        let (kind, arity) = match kind_idx {
            0 => (H, 1),
            1 => (X, 1),
            2 => (Y, 1),
            3 => (Z, 1),
            4 => (S, 1),
            5 => (T, 1),
            6 => (RX(theta), 1),
            7 => (RY(theta), 1),
            8 => (RZ(theta), 1),
            9 => (P(theta), 1),
            10 => (CX, 2),
            11 => (CZ, 2),
            12 => (CP(theta), 2),
            13 => (CRY(theta), 2),
            14 => (Swap, 2),
            15 => (RZZ(theta), 2),
            16 => (CCX, 3),
            _ => (CCZ, 3),
        };
        Gate::new(kind, &pick_qubits(n, arity, seed))
    })
}

/// Strategy: a random circuit with `n` qubits and up to `max_gates` gates.
pub fn arb_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::named(n, "random");
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// One gate from the Clifford alphabet (the stabilizer backend's
/// domain), chosen by `kind_idx` with qubits drawn from `seed`.
fn clifford_gate_from(n: u32, kind_idx: usize, seed: u64) -> Gate {
    use GateKind::*;
    let (kind, arity) = match kind_idx {
        0 => (H, 1),
        1 => (X, 1),
        2 => (Y, 1),
        3 => (Z, 1),
        4 => (S, 1),
        5 => (Sdg, 1),
        6 => (SX, 1),
        7 => (CX, 2),
        8 => (CY, 2),
        9 => (CZ, 2),
        _ => (Swap, 2),
    };
    Gate::new(kind, &pick_qubits(n, arity, seed))
}

/// Strategy: one random gate from the Clifford alphabet over `n` qubits.
fn arb_clifford_gate(n: u32) -> impl Strategy<Value = Gate> {
    (0usize..11, any::<u64>())
        .prop_map(move |(kind_idx, seed)| clifford_gate_from(n, kind_idx, seed))
}

/// Strategy: a random all-Clifford circuit with `n` qubits and up to
/// `max_gates` gates.
pub fn arb_clifford_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_clifford_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::named(n, "random_clifford");
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Strategy: a random all-Clifford circuit whose qubit count itself
/// varies over `min_n..=max_n` (the vendored proptest shim has no
/// `prop_flat_map`, so the width is folded into the same draw).
pub fn arb_clifford_circuit_sized(
    min_n: u32,
    max_n: u32,
    max_gates: usize,
) -> impl Strategy<Value = Circuit> {
    (
        min_n..max_n + 1,
        proptest::collection::vec((0usize..11, any::<u64>()), 1..max_gates),
    )
        .prop_map(|(n, specs)| {
            let mut c = Circuit::named(n, "random_clifford");
            for (kind_idx, seed) in specs {
                c.push(clifford_gate_from(n, kind_idx, seed));
            }
            c
        })
}

/// Every staging algorithm `AtlasConfig` accepts.
pub fn all_staging_algos() -> [StagingAlgo; 3] {
    [
        StagingAlgo::IlpSearch,
        StagingAlgo::GenericIlp,
        StagingAlgo::Snuqs,
    ]
}

/// Every kernelization algorithm `AtlasConfig` accepts (the parameterized
/// variants at their paper settings: greedy fusion at the cost-efficient
/// 5 qubits, greedy hybrid at HyQuas' 6).
pub fn all_kernel_algos() -> [KernelAlgo; 4] {
    [
        KernelAlgo::Dp,
        KernelAlgo::Ordered,
        KernelAlgo::Greedy(5),
        KernelAlgo::GreedyHybrid(6),
    ]
}

/// Machine shapes for an `n`-qubit circuit, smallest split first:
/// single GPU (no communication), one node × 4 GPUs (regional all-to-alls
/// only), 2 × 2 (inter-node), and — when the circuit is big enough to
/// leave ≥ 3 local qubits — a 4 × 2 many-shard split with heavy
/// remapping. Always at least three shapes for `n ≥ 5`.
pub fn machine_shapes(n: u32) -> Vec<MachineSpec> {
    let mut shapes = vec![
        MachineSpec::single_gpu(n),
        MachineSpec {
            nodes: 1,
            gpus_per_node: 4,
            local_qubits: n - 2,
        },
        MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: n - 3,
        },
    ];
    if n >= 7 {
        shapes.push(MachineSpec {
            nodes: 4,
            gpus_per_node: 2,
            local_qubits: n - 4,
        });
    }
    shapes
}

/// Machine shapes for the exact `GenericIlp` staging: the from-scratch
/// branch-and-bound is only tractable on mild splits (its documented
/// contract), so it gets its own three-shape ladder — single GPU,
/// intra-node, inter-node — with one non-local qubit each.
pub fn generic_ilp_shapes(n: u32) -> Vec<MachineSpec> {
    vec![
        MachineSpec::single_gpu(n),
        MachineSpec {
            nodes: 1,
            gpus_per_node: 4,
            local_qubits: n - 1,
        },
        MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: n - 1,
        },
    ]
}

/// The shape ladder appropriate for a staging algorithm: deep splits for
/// the scalable algorithms, the mild ladder for the exact ILP.
pub fn shapes_for(staging: StagingAlgo, n: u32) -> Vec<MachineSpec> {
    match staging {
        StagingAlgo::GenericIlp => generic_ilp_shapes(n),
        _ => machine_shapes(n),
    }
}

/// Compact human-readable shape label for assertion messages.
pub fn shape_label(spec: &MachineSpec) -> String {
    format!(
        "{}x{} L={}",
        spec.nodes, spec.gpus_per_node, spec.local_qubits
    )
}

/// The fixed-seed regression circuits: GHZ, QAOA (MaxCut ring, p = 2) and
/// Grover, all from `circuit::generators` whose seeding is deterministic,
/// sized so the full algorithm cross product stays fast.
pub fn regression_circuits() -> Vec<Circuit> {
    use atlas::circuit::generators;
    vec![
        generators::ghz(9),
        generators::qaoa(8),
        generators::grover(6),
    ]
}

/// Runs the full Atlas pipeline under `cfg` and returns the final state.
pub fn run_atlas_with(circuit: &Circuit, spec: MachineSpec, cfg: &AtlasConfig) -> StateVector {
    simulate(circuit, spec, CostModel::default(), cfg, false)
        .expect("simulation failed")
        .state
        .expect("functional run returns the state")
}

/// Runs the pipeline with the validation defaults.
pub fn run_atlas(circuit: &Circuit, spec: MachineSpec) -> StateVector {
    run_atlas_with(circuit, spec, &AtlasConfig::for_validation())
}

/// The fixed-seed all-Clifford regression circuits: GHZ and the seeded
/// random-Clifford family (both from `circuit::generators`, both
/// deterministic), sized so the full algorithm cross product stays fast.
pub fn clifford_regression_circuits() -> Vec<Circuit> {
    use atlas::circuit::generators;
    vec![generators::ghz(9), generators::clifford(8)]
}

/// A deterministic probe set of Pauli strings for an `n`-qubit backend
/// differential: every single-qubit Z, the edge ZZ correlator, XX and
/// YY on the first pair, and the full X string.
pub fn pauli_probes(n: u32) -> Vec<PauliString> {
    use atlas::sampler::PauliOp;
    let mut probes: Vec<PauliString> = (0..n)
        .map(|q| PauliString::from_ops(n, &[(q, PauliOp::Z)]))
        .collect();
    probes.push(PauliString::from_ops(
        n,
        &[(0, PauliOp::Z), (n - 1, PauliOp::Z)],
    ));
    probes.push(PauliString::from_ops(
        n,
        &[(0, PauliOp::X), (1, PauliOp::X)],
    ));
    probes.push(PauliString::from_ops(
        n,
        &[(0, PauliOp::Y), (1, PauliOp::Y)],
    ));
    probes.push(PauliString::from_ops(
        n,
        &(0..n).map(|q| (q, PauliOp::X)).collect::<Vec<_>>(),
    ));
    probes
}

/// Backend-vs-backend differential: on an all-Clifford circuit, the
/// sharded statevector pipeline under `(staging, kernelizer, spec)` and
/// the CHP stabilizer tableau must agree — on the support (every
/// basis-state probability), on every single-qubit marginal and on the
/// [`pauli_probes`] expectations — to within `1e-9`.
pub fn assert_backends_agree(
    circuit: &Circuit,
    spec: MachineSpec,
    staging: StagingAlgo,
    kernelizer: KernelAlgo,
) {
    let n = circuit.num_qubits();
    assert!(n <= 16, "support enumeration needs a small circuit");
    let mut cfg = AtlasConfig::for_validation();
    cfg.staging = staging;
    cfg.kernelizer = kernelizer;
    cfg.ilp_node_limit = 200_000;
    let label = format!(
        "{} under {staging:?} x {kernelizer:?} on {}",
        circuit.name(),
        shape_label(&spec)
    );
    cfg.backend = BackendKind::Statevec;
    let sv = Planner::new(spec, CostModel::default(), cfg.clone())
        .plan_backend(circuit)
        .unwrap_or_else(|e| panic!("{label}: statevec plan failed: {e}"));
    cfg.backend = BackendKind::Stabilizer;
    let st = Planner::new(spec, CostModel::default(), cfg)
        .plan_backend(circuit)
        .unwrap_or_else(|e| panic!("{label}: stabilizer plan failed: {e}"));
    assert_eq!(sv.backend_name(), "statevec");
    assert_eq!(st.backend_name(), "stabilizer");
    let rv = sv
        .run(circuit)
        .unwrap_or_else(|e| panic!("{label}: statevec run failed: {e}"));
    let rs = st
        .run(circuit)
        .unwrap_or_else(|e| panic!("{label}: stabilizer run failed: {e}"));
    for q in 0..n {
        let (a, b) = (rv.marginal_one(q), rs.marginal_one(q));
        assert!((a - b).abs() < 1e-9, "{label}: marginal({q}) {a} vs {b}");
    }
    for idx in 0..(1u64 << n) {
        let (a, b) = (
            rv.probability_of_bits(&[idx]),
            rs.probability_of_bits(&[idx]),
        );
        assert!((a - b).abs() < 1e-9, "{label}: p({idx}) {a} vs {b}");
    }
    for p in pauli_probes(n) {
        let (a, b) = (rv.expectation(&p), rs.expectation(&p));
        assert!((a - b).abs() < 1e-9, "{label}: <{p}> {a} vs {b}");
    }
}

/// Differential check: the distributed pipeline under
/// `(staging, kernelizer, spec)` must reproduce `simulate_reference`'s
/// amplitudes on `circuit` to within `1e-9`.
pub fn assert_matches_reference(
    circuit: &Circuit,
    spec: MachineSpec,
    staging: StagingAlgo,
    kernelizer: KernelAlgo,
) {
    let mut cfg = AtlasConfig::for_validation();
    cfg.staging = staging;
    cfg.kernelizer = kernelizer;
    // Keep GenericIlp combinations fast: a tight *node* budget makes the
    // solver return its incumbent as `Feasible` instead of grinding for
    // the optimality proof — the staging is still valid, which is all
    // the differential check needs. (Node budgets are deterministic;
    // the wall-clock limit is opt-in and load-dependent, so tests avoid
    // it.)
    cfg.ilp_node_limit = 200_000;
    let got = run_atlas_with(circuit, spec, &cfg);
    let want = simulate_reference(circuit);
    let diff = got.max_abs_diff(&want);
    assert!(
        diff < 1e-9,
        "{} under {staging:?} x {kernelizer:?} on {}: diverged by {diff:e}",
        circuit.name(),
        shape_label(&spec),
    );
}
