//! Shared helpers for the integration tests: a proptest strategy that
//! generates arbitrary well-formed circuits over the full gate alphabet.

use atlas::prelude::*;
use proptest::prelude::*;

/// Picks `k` distinct qubits out of `n` from an index seed.
fn pick_qubits(n: u32, k: usize, seed: u64) -> Vec<u32> {
    let mut qs: Vec<u32> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..qs.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        qs.swap(i, j);
    }
    qs.truncate(k);
    qs
}

/// Strategy: one random gate over `n` qubits.
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    (0usize..18, any::<u64>(), -3.0f64..3.0).prop_map(move |(kind_idx, seed, theta)| {
        use GateKind::*;
        let (kind, arity) = match kind_idx {
            0 => (H, 1),
            1 => (X, 1),
            2 => (Y, 1),
            3 => (Z, 1),
            4 => (S, 1),
            5 => (T, 1),
            6 => (RX(theta), 1),
            7 => (RY(theta), 1),
            8 => (RZ(theta), 1),
            9 => (P(theta), 1),
            10 => (CX, 2),
            11 => (CZ, 2),
            12 => (CP(theta), 2),
            13 => (CRY(theta), 2),
            14 => (Swap, 2),
            15 => (RZZ(theta), 2),
            16 => (CCX, 3),
            _ => (CCZ, 3),
        };
        Gate::new(kind, &pick_qubits(n, arity, seed))
    })
}

/// Strategy: a random circuit with `n` qubits and up to `max_gates` gates.
pub fn arb_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::named(n, "random");
        for g in gates {
            c.push(g);
        }
        c
    })
}
