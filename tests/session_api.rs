//! Integration tests of the typed session API
//! (`Planner` → `CompiledPlan` → `Execution`): plan reuse across
//! re-parameterized circuits, misuse rejection, and a sweep
//! differential check over the full `StagingAlgo × KernelAlgo` grid.
//!
//! The plan-*once* property itself (the staging-invocation counter) is
//! enforced in `tests/plan_once.rs`, which runs as its own process so
//! the global counter is not shared with unrelated tests.

mod common;

use atlas::prelude::*;
use common::{all_kernel_algos, all_staging_algos, shape_label, shapes_for};

/// Deterministic sweep point `i` of a circuit: every gate parameter
/// shifted by `0.17 · i` (structure unchanged; generic angles stay
/// generic, so the structural fingerprint is preserved).
fn sweep_point(circuit: &Circuit, i: usize) -> Circuit {
    circuit.map_params(|_, _, p| p + 0.17 * i as f64)
}

/// The sweep differential: plan once per `(staging, kernelizer, shape)`
/// combination, execute three re-parameterized points against the one
/// `CompiledPlan`, and require amplitude-level agreement with the dense
/// reference simulator on every point, plus matching Pauli expectations
/// through the sharded measurement engine.
#[test]
fn sweep_points_match_reference_across_algorithm_grid() {
    let base = atlas::circuit::generators::qaoa(8);
    let zz: PauliString = "IIIIIIZZ".parse().unwrap();
    for staging in all_staging_algos() {
        for kernelizer in all_kernel_algos() {
            // The inter-node shape of the ladder: communication on every
            // class of physical link.
            let spec = shapes_for(staging, 8)[2];
            let cfg = AtlasConfig {
                staging,
                kernelizer,
                final_unpermute: true,
                // Tight deterministic GenericIlp node budget: a feasible
                // incumbent is all the differential check needs (same
                // convention as `assert_matches_reference`).
                ilp_node_limit: 200_000,
                ..AtlasConfig::default()
            };
            let planner = Planner::new(spec, CostModel::default(), cfg);
            let compiled = planner
                .plan(&base)
                .unwrap_or_else(|e| panic!("{staging:?} x {kernelizer:?}: plan failed: {e}"));
            for i in 0..3 {
                let point = sweep_point(&base, i);
                assert!(
                    compiled.accepts(&point),
                    "{staging:?} x {kernelizer:?}: point {i} changed the fingerprint"
                );
                let run = compiled.execute(&point).unwrap_or_else(|e| {
                    panic!("{staging:?} x {kernelizer:?} point {i}: execute failed: {e}")
                });
                let want = simulate_reference(&point);
                let got = run.state.as_ref().expect("final_unpermute gathers state");
                let diff = got.max_abs_diff(&want);
                assert!(
                    diff < 1e-9,
                    "{staging:?} x {kernelizer:?} on {} point {i}: diverged by {diff:e}",
                    shape_label(&spec),
                );
                // Expectation through the sharded engine vs the dense
                // state (⟨ψ|Z₁Z₀|ψ⟩ = Σ ±|α_x|²).
                let dense_zz: f64 = want
                    .amplitudes()
                    .iter()
                    .enumerate()
                    .map(|(x, a)| {
                        let sign = if (x & 0b11).count_ones() % 2 == 0 {
                            1.0
                        } else {
                            -1.0
                        };
                        sign * a.norm_sqr()
                    })
                    .sum();
                let got_zz = run.measurements.expectation(&zz);
                assert!(
                    (got_zz - dense_zz).abs() < 1e-9,
                    "{staging:?} x {kernelizer:?} point {i}: <ZZ> {got_zz} vs {dense_zz}"
                );
            }
        }
    }
}

/// Sweep points differ from each other (the re-parameterization is
/// real), yet every point reuses the same plan object.
#[test]
fn sweep_points_produce_distinct_states() {
    let base = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let cfg = AtlasConfig::for_validation();
    let compiled = Planner::new(spec, CostModel::default(), cfg)
        .plan(&base)
        .unwrap();
    let s0 = compiled
        .execute(&sweep_point(&base, 0))
        .unwrap()
        .state
        .unwrap();
    let s1 = compiled
        .execute(&sweep_point(&base, 1))
        .unwrap()
        .state
        .unwrap();
    assert!(
        s0.max_abs_diff(&s1) > 1e-3,
        "shifted parameters must change the state"
    );
}

#[test]
fn compiled_plan_rejects_structurally_different_circuits() {
    let base = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let compiled = Planner::new(spec, CostModel::default(), AtlasConfig::default())
        .plan(&base)
        .unwrap();

    // Extra gate.
    let mut extra = base.clone();
    extra.h(0);
    // Different wiring, same gate multiset.
    let rewired = {
        let mut c = Circuit::named(8, base.name());
        for (i, g) in base.gates().iter().enumerate() {
            if i == 0 {
                // First gate is an H on qubit 0; move it to qubit 1.
                c.push(Gate::new(g.kind, &[1]));
            } else {
                c.push(*g);
            }
        }
        c
    };
    // Different qubit count.
    let narrower = atlas::circuit::generators::qaoa(7);

    for (label, bad) in [
        ("extra gate", &extra),
        ("rewired", &rewired),
        ("narrower", &narrower),
    ] {
        assert!(!compiled.accepts(bad), "{label}: fingerprint should differ");
        match compiled.execute(bad) {
            Err(AtlasError::PlanMismatch { reason }) => assert!(
                reason.contains("re-plan"),
                "{label}: reason should point at re-planning, got: {reason}"
            ),
            other => panic!("{label}: expected PlanMismatch, got {other:?}"),
        }
    }

    // The original still executes fine after all the rejections.
    assert!(compiled.execute(&base).is_ok());
}

#[test]
fn planner_surfaces_typed_errors() {
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    // 6 qubits < L + G = 7.
    let small = atlas::circuit::generators::ghz(6);
    match Planner::new(spec, CostModel::default(), AtlasConfig::default()).plan(&small) {
        Err(AtlasError::CircuitTooSmall {
            qubits: 6,
            local: 6,
            global: 1,
        }) => {}
        other => panic!("expected CircuitTooSmall, got {other:?}"),
    }
    // An invalid config is caught by plan() even when built by hand.
    let bad = AtlasConfig {
        seed: 3,
        shots: 0,
        ..AtlasConfig::default()
    };
    let ok_circuit = atlas::circuit::generators::ghz(8);
    match Planner::new(MachineSpec::single_gpu(8), CostModel::default(), bad).plan(&ok_circuit) {
        Err(AtlasError::InvalidConfig { .. }) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

/// The shim and the session API agree bit-for-bit on the same run.
#[test]
fn shim_and_session_agree() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let cfg = AtlasConfig {
        shots: 32,
        seed: 11,
        ..AtlasConfig::for_validation()
    };
    let shim = simulate(&circuit, spec, CostModel::default(), &cfg, false).unwrap();
    let compiled = Planner::new(spec, CostModel::default(), cfg)
        .plan(&circuit)
        .unwrap();
    let session = compiled.execute(&circuit).unwrap();
    let (a, b) = (shim.state.unwrap(), session.state.unwrap());
    assert!(a
        .amplitudes()
        .iter()
        .zip(b.amplitudes())
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()));
    assert_eq!(shim.samples.unwrap(), session.samples.unwrap());
    assert_eq!(
        shim.plan.final_mapping(false),
        compiled.plan().final_mapping(false)
    );
}

/// `FullPlan::final_mapping` is the single source of truth for the
/// post-EXECUTE layout: identity after a final unpermute, the last
/// stage's mapping otherwise — and the measurement engine actually sits
/// on that layout.
#[test]
fn final_mapping_is_consistent_with_measurements() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    for unpermute in [false, true] {
        let cfg = AtlasConfig {
            final_unpermute: unpermute,
            ..AtlasConfig::default()
        };
        let compiled = Planner::new(spec, CostModel::default(), cfg)
            .plan(&circuit)
            .unwrap();
        let mapping = compiled.plan().final_mapping(unpermute);
        if unpermute {
            assert_eq!(mapping, (0..8).collect::<Vec<u32>>());
        } else {
            assert_eq!(
                mapping,
                compiled.plan().stages.last().unwrap().mapping,
                "without unpermute the layout is the last stage's mapping"
            );
        }
        let run = compiled.execute(&circuit).unwrap();
        assert_eq!(run.measurements.mapping(), &mapping[..]);
        // And the engine reads correct logical-order results through it.
        let want = simulate_reference(&circuit);
        for x in [0u64, 1, 100, 255] {
            assert!((run.measurements.probability(x) - want.probability(x)).abs() < 1e-9);
        }
    }
}

/// The library-layer admission gate: a [`CompiledPlan`] whose EXECUTE
/// would allocate past [`AtlasConfig::memory_budget`] returns the typed
/// [`AtlasError::ResourceExhausted`] *before* touching any amplitude
/// memory. Planning itself (PARTITION) is never gated — plans are
/// cheap and reusable under a later, larger budget.
#[test]
fn over_budget_execute_is_rejected_typed() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let cfg = AtlasConfig {
        memory_budget: MemoryBudget::bytes(1 << 10),
        ..AtlasConfig::default()
    };
    let compiled = Planner::new(spec, CostModel::default(), cfg)
        .plan(&circuit)
        .expect("planning is not gated by the budget");
    match compiled.execute(&circuit) {
        Err(AtlasError::ResourceExhausted { needed, budget }) => {
            assert_eq!(needed, MemoryBudget::peak_bytes(8, 5));
            assert_eq!(budget, 1 << 10);
        }
        other => panic!("expected ResourceExhausted, got: {other:?}"),
    }
}

/// The cooperative-interruption contract of
/// [`CompiledPlan::execute_with`]: a probe that never fires leaves the
/// run byte-identical to plain [`CompiledPlan::execute`]; a probe that
/// fires immediately stops at the first stage barrier with `Ok(None)`
/// (no error, no partial result).
#[test]
fn execute_with_probe_interrupts_or_is_invisible() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let cfg = AtlasConfig {
        final_unpermute: true,
        ..AtlasConfig::default()
    };
    let compiled = Planner::new(spec, CostModel::default(), cfg)
        .plan(&circuit)
        .unwrap();

    let plain = compiled.execute(&circuit).unwrap();
    let probed = compiled
        .execute_with(&circuit, &|| false)
        .unwrap()
        .expect("a never-firing probe cannot interrupt");
    assert_eq!(plain.report.total_secs, probed.report.total_secs);
    assert_eq!(plain.report.kernels, probed.report.kernels);
    assert_eq!(
        plain.state.as_ref().unwrap().amplitudes(),
        probed.state.as_ref().unwrap().amplitudes(),
        "an unfired probe must not perturb a single amplitude"
    );

    // An always-true probe stops EXECUTE at the first barrier.
    assert!(compiled.execute_with(&circuit, &|| true).unwrap().is_none());
}
