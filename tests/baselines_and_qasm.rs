//! Baseline simulators: functional agreement with the reference, and the
//! qualitative performance ordering the paper's Fig. 5 reports. Plus QASM
//! round-trip semantics.

mod common;

use atlas::baselines;
use atlas::circuit::qasm;
use atlas::prelude::*;
use proptest::prelude::*;

#[test]
fn hyquas_like_matches_reference() {
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    for fam in [Family::Qft, Family::Ising, Family::Dj, Family::GraphState] {
        let c = fam.generate(9);
        let out = baselines::hyquas(&c, spec, CostModel::default(), false).unwrap();
        let got = out.state.expect("functional");
        let want = simulate_reference(&c);
        let diff = got.max_abs_diff(&want);
        assert!(diff < 1e-9, "{fam:?}: hyquas diverged by {diff}");
    }
}

#[test]
fn atlas_beats_baselines_at_scale() {
    // Fig. 5's qualitative claim at the model level: on a multi-node
    // machine Atlas' model time is below HyQuas-like, cuQuantum-like and
    // Qiskit-like for the communication-heavy families.
    let spec = MachineSpec {
        nodes: 4,
        gpus_per_node: 4,
        local_qubits: 14,
    };
    for fam in [Family::Qft, Family::Su2Random, Family::QpeExact] {
        let c = fam.generate(20);
        let cost = CostModel::default();
        let atlas_t = simulate(&c, spec, cost.clone(), &AtlasConfig::default(), true)
            .unwrap()
            .report
            .total_secs;
        let hyquas_t = baselines::hyquas(&c, spec, cost.clone(), true)
            .unwrap()
            .report
            .total_secs;
        let cuq_t = baselines::cuquantum(&c, spec, cost.clone(), true)
            .unwrap()
            .report
            .total_secs;
        let qiskit_t = baselines::qiskit(&c, spec, cost.clone(), true)
            .unwrap()
            .report
            .total_secs;
        assert!(
            atlas_t <= hyquas_t * 1.05,
            "{fam:?}: atlas {atlas_t} vs hyquas {hyquas_t}"
        );
        assert!(
            atlas_t < cuq_t,
            "{fam:?}: atlas {atlas_t} vs cuquantum {cuq_t}"
        );
        assert!(
            atlas_t < qiskit_t,
            "{fam:?}: atlas {atlas_t} vs qiskit {qiskit_t}"
        );
        assert!(
            qiskit_t > cuq_t,
            "{fam:?}: qiskit must be the slowest baseline"
        );
    }
}

#[test]
fn atlas_beats_qdao_beyond_gpu_memory() {
    // Fig. 7's qualitative claim: offloaded Atlas is more than an order
    // of magnitude faster than QDAO-like execution.
    let spec = MachineSpec::single_gpu(24);
    let c = Family::Qft.generate(30);
    let cost = CostModel::default();
    let atlas_t = simulate(&c, spec, cost.clone(), &AtlasConfig::default(), true)
        .unwrap()
        .report
        .total_secs;
    let qdao_t = baselines::qdao_run(&c, spec, cost, 24, 19)
        .unwrap()
        .report
        .total_secs;
    assert!(
        qdao_t > 5.0 * atlas_t,
        "QDAO ({qdao_t:.2}s) should trail Atlas ({atlas_t:.2}s) by far"
    );
}

#[test]
fn qasm_roundtrip_gate_for_gate_on_every_family() {
    // Bit-exact round-trip: the writer emits shortest-round-trip floats,
    // so re-parsing must reproduce the exact gate list (kinds, parameters
    // and qubits), not just equivalent semantics.
    for fam in Family::table1() {
        let c = fam.generate(8);
        let back = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
        assert_eq!(back.num_qubits(), c.num_qubits(), "{fam:?}");
        assert_eq!(back.gates(), c.gates(), "{fam:?}: gate lists differ");
    }
    // The non-Table-I generators round-trip too.
    use atlas::circuit::generators;
    for c in [
        generators::hhl_padded(4, 9),
        generators::qaoa(8),
        generators::grover(8),
    ] {
        let back = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
        assert_eq!(back.gates(), c.gates(), "{}: gate lists differ", c.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Swap-based baselines agree with the reference on random circuits.
    #[test]
    fn swap_baselines_match_reference(circuit in common::arb_circuit(7, 30)) {
        let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: 5 };
        let want = simulate_reference(&circuit);
        let cu = baselines::cuquantum(&circuit, spec, CostModel::default(), false)
            .unwrap().state.unwrap();
        prop_assert!(cu.max_abs_diff(&want) < 1e-9);
    }

    /// QASM round-trips preserve semantics, not just syntax.
    #[test]
    fn qasm_roundtrip_preserves_amplitudes(circuit in common::arb_circuit(6, 25)) {
        let text = qasm::to_qasm(&circuit);
        let back = qasm::from_qasm(&text).unwrap();
        let a = simulate_reference(&circuit);
        let b = simulate_reference(&back);
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
    }
}
