//! Property tests for `atlas_qmath::perm` and `atlas_qmath::bits` — the
//! index-space algebra the sampler's unpermutation leans on: every
//! sampled bitstring and every Pauli mask goes through `apply_index` /
//! `IndexPermuter::apply`, `extract_bits` and `deposit_bits`, so their
//! round-trip laws (compose / invert / apply) are load-bearing.

use atlas::qmath::{deposit_bits, extract_bits, insert_bits, IndexPermuter, QubitPermutation};
use proptest::prelude::*;

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn perm_from_seed(n: usize, seed: u64) -> QubitPermutation {
    let mut map: Vec<u32> = (0..n as u32).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        map.swap(i, (s >> 33) as usize % (i + 1));
    }
    QubitPermutation::from_map(map)
}

/// Strategy: a random permutation over 1..=24 bit positions.
fn arb_perm() -> impl Strategy<Value = QubitPermutation> {
    (1usize..25, any::<u64>()).prop_map(|(n, seed)| perm_from_seed(n, seed))
}

/// Strategy: a sorted set of distinct bit positions below `n`.
fn arb_bit_set(n: u32) -> impl Strategy<Value = Vec<u32>> {
    any::<u64>().prop_map(move |mask| {
        let mask = mask & ((1u64 << n) - 1);
        (0..n).filter(|b| (mask >> b) & 1 == 1).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `p ∘ p⁻¹ = p⁻¹ ∘ p = id`, and `(p⁻¹)⁻¹ = p`.
    #[test]
    fn inverse_composes_to_identity(p in arb_perm()) {
        let inv = p.inverse();
        prop_assert!(p.then(&inv).is_identity());
        prop_assert!(inv.then(&p).is_identity());
        prop_assert_eq!(inv.inverse(), p);
    }

    /// `apply_index` respects composition: `(a then b)(x) = b(a(x))`,
    /// and inversion round-trips every index.
    #[test]
    fn apply_index_respects_compose_and_invert(
        seeds in (any::<u64>(), any::<u64>()),
        n in 2usize..16,
        idx in any::<u64>(),
    ) {
        let idx = idx & ((1u64 << n) - 1);
        let a = perm_from_seed(n, seeds.0);
        let b = perm_from_seed(n, seeds.1);
        prop_assert_eq!(
            a.then(&b).apply_index(idx),
            b.apply_index(a.apply_index(idx))
        );
        prop_assert_eq!(a.inverse().apply_index(a.apply_index(idx)), idx);
        // apply preserves popcount (it is a bit permutation).
        prop_assert_eq!(a.apply_index(idx).count_ones(), idx.count_ones());
    }

    /// The byte-LUT `IndexPermuter` is extensionally equal to
    /// `apply_index`, including through inversion.
    #[test]
    fn index_permuter_equals_apply_index(
        p in arb_perm(),
        raw in any::<u64>(),
    ) {
        let n = p.len() as u32;
        let idx = raw & ((1u64 << n) - 1);
        let lut = IndexPermuter::new(&p);
        prop_assert_eq!(lut.apply(idx), p.apply_index(idx));
        let back = IndexPermuter::new(&p.inverse());
        prop_assert_eq!(back.apply(lut.apply(idx)), idx);
        prop_assert_eq!(lut.is_identity(), p.is_identity());
    }

    /// `extract_bits` inverts `deposit_bits` on its range, and
    /// `deposit_bits ∘ extract_bits` masks to the selected positions.
    #[test]
    fn extract_deposit_roundtrip(
        bits in arb_bit_set(20),
        raw in any::<u64>(),
    ) {
        let k = bits.len() as u32;
        let packed = raw & ((1u64 << k) - 1);
        prop_assert_eq!(extract_bits(deposit_bits(packed, &bits), &bits), packed);
        let idx = raw & ((1u64 << 20) - 1);
        let mask: u64 = bits.iter().fold(0, |m, &b| m | (1 << b));
        prop_assert_eq!(deposit_bits(extract_bits(idx, &bits), &bits), idx & mask);
    }

    /// `insert_bits` (base) + `deposit_bits` (offset) tile the index
    /// space: extracting the complement of the inserted positions
    /// recovers the base enumeration.
    #[test]
    fn insert_bits_complement_recovers_base(
        bits in arb_bit_set(12),
        raw in any::<u64>(),
    ) {
        let n = 12u32;
        let k = bits.len() as u32;
        let base = raw & ((1u64 << (n - k)) - 1);
        let rest: Vec<u32> = (0..n).filter(|b| !bits.contains(b)).collect();
        prop_assert_eq!(extract_bits(insert_bits(base, &bits), &rest), base);
        // Inserted positions read back as zero.
        prop_assert_eq!(extract_bits(insert_bits(base, &bits), &bits), 0);
    }

    /// A permutation applied to a single-bit index lands exactly on the
    /// mapped destination — the law `phys_mask` depends on.
    #[test]
    fn single_bits_map_to_dst(p in arb_perm(), bit in 0u32..24) {
        let n = p.len() as u32;
        let bit = bit % n;
        prop_assert_eq!(p.apply_index(1u64 << bit), 1u64 << p.dst(bit));
    }
}
