//! Property tests on the planner's invariants: staging constraints
//! (§IV), kernelization constraints (§V, Constraint 1 / Theorems 3 & 6),
//! and the paper's comparative guarantees, on arbitrary circuits.

mod common;

use atlas::core::config::AtlasConfig;
use atlas::core::kernelize::{self, KGate, KernelCost};
use atlas::core::plan::validate_stages;
use atlas::core::staging;
use atlas::prelude::*;
use proptest::prelude::*;

fn kgates(circuit: &Circuit) -> Vec<KGate> {
    let cm = CostModel::default();
    circuit
        .gates()
        .iter()
        .map(|g| KGate {
            mask: g.qubit_mask(),
            shm_ns: cm.shm_gate_unit_ns(g),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Staging always yields a valid plan: full cover, dependency order,
    /// non-insular qubits local, exact class sizes.
    #[test]
    fn staging_is_always_valid(
        circuit in common::arb_circuit(8, 60),
        l in 3u32..8,
        g in 0u32..2,
    ) {
        let g = g.min(8 - l);
        let cfg = AtlasConfig::default();
        let out = staging::stage_circuit(&circuit, l, g, &cfg).unwrap();
        prop_assert!(validate_stages(&circuit, &out.stages, l, g).is_ok());
    }

    /// Atlas staging never needs more stages than SnuQS (§VII-D).
    #[test]
    fn atlas_staging_never_worse_than_snuqs(
        circuit in common::arb_circuit(8, 60),
        l in 3u32..8,
    ) {
        let cfg = AtlasConfig::default();
        let atlas = staging::stage_circuit(&circuit, l, 1.min(8 - l), &cfg).unwrap();
        let snuqs = staging::stage_circuit_snuqs(&circuit, l, 1.min(8 - l), &cfg).unwrap();
        prop_assert!(atlas.num_stages() <= snuqs.num_stages());
    }

    /// KERNELIZE output always covers the gate sequence with valid
    /// kernels and never costs more than ORDERED KERNELIZE (Theorem 6)
    /// or the greedy baseline.
    #[test]
    fn kernelize_invariants(circuit in common::arb_circuit(8, 50)) {
        let kc = KernelCost::from_machine(&CostModel::default());
        let gates = kgates(&circuit);
        let dp = kernelize::kernelize(&gates, &kc, 500);
        kernelize::validate_cover(&gates, &dp.kernels).unwrap();
        let ordered = kernelize::kernelize_ordered(&gates, &kc);
        prop_assert!(dp.cost <= ordered.cost + 1e-9,
            "Theorem 6 violated: dp {} > ordered {}", dp.cost, ordered.cost);
    }

    /// The kernel sequence is topologically equivalent to the stage
    /// sequence (Theorem 2): replaying kernels in emitted order must
    /// reproduce the circuit's amplitudes.
    #[test]
    fn kernel_order_is_topologically_valid(circuit in common::arb_circuit(7, 40)) {
        let kc = KernelCost::from_machine(&CostModel::default());
        let gates = kgates(&circuit);
        let dp = kernelize::kernelize(&gates, &kc, 500);
        // Replay: apply kernels in order, gates within each kernel in
        // stored order, and compare with program order.
        let mut replay = Circuit::new(circuit.num_qubits());
        for k in &dp.kernels {
            for &gi in &k.gates {
                replay.push(circuit.gates()[gi]);
            }
        }
        prop_assert!(circuit.topologically_equivalent(&replay),
            "kernel replay is not a valid reordering");
        let a = simulate_reference(&circuit);
        let b = simulate_reference(&replay);
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
    }
}

#[test]
fn stage_count_monotone_in_l_on_families() {
    // The anomaly SnuQS shows at Fig. 9 (L=23→24) must not happen.
    let cfg = AtlasConfig::default();
    for fam in Family::table1() {
        let c = fam.generate(11);
        let mut prev = usize::MAX;
        for l in 4..=11u32 {
            let out = staging::stage_circuit(&c, l, 1.min(11 - l), &cfg).unwrap();
            assert!(
                out.num_stages() <= prev,
                "{fam:?}: stages increased at L={l}"
            );
            prev = out.num_stages();
        }
    }
}

#[test]
fn kernel_cost_improves_with_threshold() {
    // Fig. 13's trend: larger pruning thresholds never hurt.
    let kc = KernelCost::from_machine(&CostModel::default());
    for fam in [Family::Qft, Family::Vqc, Family::Ae] {
        let gates = kgates(&fam.generate(12));
        let mut prev = f64::INFINITY;
        for t in [4usize, 20, 100, 500] {
            let out = kernelize::kernelize(&gates, &kc, t);
            assert!(
                out.cost <= prev + 1e-9,
                "{fam:?}: cost went up from T sweep at T={t}"
            );
            prev = out.cost.min(prev);
        }
    }
}
