//! Proof that the session pool amortizes PARTITION across *tenants*:
//! N clients submitting structurally identical circuits drive the
//! staging solver exactly once, through the shared fingerprint-keyed
//! plan cache.
//!
//! Own integration-test binary — and therefore own process — because
//! `atlas_core::staging::staging_invocations()` is a process-global
//! counter: unrelated tests planning concurrently in the same binary
//! would race it. (Same reason `tests/plan_once.rs` is separate.)

use atlas::core::staging::staging_invocations;
use atlas::prelude::*;
use atlas::serve::{JobOutcome, JobOutput, JobRequest, ServeConfig, SessionPool};

#[test]
fn many_tenants_same_structure_plan_exactly_once() {
    const TENANTS: usize = 3;
    const JOBS_PER_TENANT: usize = 4;
    let base = atlas::circuit::generators::qaoa(8);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    };
    let cfg = AtlasConfig {
        threads: 1,
        ..AtlasConfig::default()
    };
    let pool = SessionPool::new(spec, CostModel::default(), cfg, ServeConfig::default()).unwrap();

    let before = staging_invocations();
    let mut handles = Vec::new();
    for t in 0..TENANTS {
        for j in 0..JOBS_PER_TENANT {
            // Different parameters per job — same structure, so every
            // job shares one cached plan.
            let point = base.map_params(|_, _, p| p + 0.05 * (t * JOBS_PER_TENANT + j) as f64);
            handles.push(
                pool.submit(&format!("tenant-{t}"), point, JobRequest::Execute)
                    .unwrap(),
            );
        }
    }
    for h in handles {
        match h.wait().unwrap() {
            JobOutcome::Output(JobOutput::Executed { norm, .. }) => {
                assert!((norm - 1.0).abs() < 1e-9)
            }
            other => panic!("expected Executed, got {other:?}"),
        }
    }
    assert_eq!(
        staging_invocations() - before,
        1,
        "{TENANTS} tenants x {JOBS_PER_TENANT} jobs must invoke PARTITION exactly once"
    );
    let stats = pool.shutdown();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, (TENANTS * JOBS_PER_TENANT - 1) as u64);
    assert_eq!(stats.jobs_completed, (TENANTS * JOBS_PER_TENANT) as u64);
}
