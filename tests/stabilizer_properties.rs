//! Property tests for the CHP stabilizer tableau: algebraic invariants
//! that must hold for *every* Clifford circuit, not just the regression
//! families.
//!
//! * `C · C⁻¹` is the identity, so replaying a circuit followed by its
//!   inverse must restore the |0…0⟩ tableau exactly;
//! * the stabilizer group is abelian, so applying any element of the
//!   group as a gate sequence fixes every stabilizer row under
//!   conjugation — the canonical tableau is invariant;
//! * for small `n` the tableau converts to a dense statevector that
//!   must match `simulate_reference` up to global phase.

mod common;

use atlas::prelude::*;
use atlas::stabilizer::{inverse_circuit, Tableau};
use proptest::prelude::*;

/// Rebuilds one canonical stabilizer row as an explicit Pauli gate
/// sequence: `x&z → Y`, `x → X`, `z → Z` per qubit. The row's sign and
/// the `Y = iXZ` bookkeeping only contribute a global phase, which the
/// tableau representation cannot see.
fn row_as_gates(c: &mut Circuit, x: &[u64], z: &[u64], n: u32) {
    for q in 0..n {
        let (w, b) = ((q / 64) as usize, q % 64);
        let xb = (x[w] >> b) & 1 == 1;
        let zb = (z[w] >> b) & 1 == 1;
        match (xb, zb) {
            (true, true) => c.push(Gate::new(GateKind::Y, &[q])),
            (true, false) => c.push(Gate::new(GateKind::X, &[q])),
            (false, true) => c.push(Gate::new(GateKind::Z, &[q])),
            (false, false) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replaying `C` then `C⁻¹` restores the zero-state tableau:
    /// destabilizers Xᵢ, stabilizers Zᵢ, all signs +.
    #[test]
    fn inverse_circuit_restores_zero_state(circuit in common::arb_clifford_circuit(8, 60)) {
        let mut t = Tableau::from_circuit(&circuit).unwrap();
        t.apply_circuit(&inverse_circuit(&circuit).unwrap()).unwrap();
        prop_assert!(t.is_zero_state(), "C followed by C^-1 did not restore |0...0>");
    }

    /// Applying any product of the state's own stabilizer generators is
    /// (up to global phase) the identity on the state, so the canonical
    /// stabilizer rows must not move.
    #[test]
    fn applying_own_stabilizers_is_invariant(
        circuit in common::arb_clifford_circuit(8, 60),
        mask in any::<u64>(),
    ) {
        let n = circuit.num_qubits();
        let mut t = Tableau::from_circuit(&circuit).unwrap();
        let before = t.canonical_stabilizers();
        let mut pauli = Circuit::named(n, "stabilizer_product");
        for (i, (x, z, _sign)) in before.iter().enumerate() {
            if (mask >> (i % 64)) & 1 == 1 {
                row_as_gates(&mut pauli, x, z, n);
            }
        }
        t.apply_circuit(&pauli).unwrap();
        prop_assert_eq!(
            before,
            t.canonical_stabilizers(),
            "conjugation by a stabilizer-group element moved the canonical tableau"
        );
    }

    /// The tableau's dense conversion agrees with the reference
    /// statevector simulator up to global phase, across qubit counts.
    #[test]
    fn to_statevector_matches_reference(
        circuit in common::arb_clifford_circuit_sized(2, 10, 40),
    ) {
        let t = Tableau::from_circuit(&circuit).unwrap();
        let dense = t.to_statevector().unwrap();
        let reference = simulate_reference(&circuit);
        let fidelity = dense.fidelity(&reference);
        prop_assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "tableau -> statevector fidelity {fidelity} on {} qubits",
            circuit.num_qubits()
        );
    }
}
