//! The differential-correctness harness: every combination of
//! `StagingAlgo` × `KernelAlgo` × machine shape must reproduce the dense
//! reference simulator's amplitudes, on fixed-seed regression circuits
//! (GHZ / QAOA / Grover) and on arbitrary random circuits.
//!
//! This is the guarantee every later performance or refactoring PR leans
//! on: the hierarchical pipeline (staging ILP → kernelization DP →
//! insular specialization → sharded execution with all-to-alls) is
//! amplitude-exact under *every* planner configuration, not just the
//! defaults.
//!
//! Shape ladders are per-algorithm: the scalable staging algorithms
//! (`IlpSearch`, `Snuqs`) sweep deep splits down to `L = n - 4`, while
//! the exact `GenericIlp` — tractable only on small models, per its
//! contract — sweeps a milder single-GPU / intra-node / inter-node
//! ladder. Every algorithm is differentially validated on ≥ 3 shapes.

mod common;

use atlas::circuit::generators;
use atlas::prelude::*;
use proptest::prelude::*;

/// Sweeps the full (staging × kernelizer × shape) cross product for one
/// regression circuit.
fn sweep_cross_product(circuit: &Circuit) {
    for staging in common::all_staging_algos() {
        for spec in common::shapes_for(staging, circuit.num_qubits()) {
            for kernelizer in common::all_kernel_algos() {
                common::assert_matches_reference(circuit, spec, staging, kernelizer);
            }
        }
    }
}

/// Pulls one circuit out of the shared regression list by name prefix,
/// so the sweeps below stay tied to `common::regression_circuits()`.
fn regression(prefix: &str) -> Circuit {
    common::regression_circuits()
        .into_iter()
        .find(|c| c.name().starts_with(prefix))
        .unwrap_or_else(|| panic!("no regression circuit named {prefix}*"))
}

#[test]
fn ghz_all_algorithms_all_shapes() {
    sweep_cross_product(&regression("ghz"));
}

#[test]
fn qaoa_all_algorithms_all_shapes() {
    sweep_cross_product(&regression("qaoa"));
}

#[test]
fn grover_all_algorithms_all_shapes() {
    sweep_cross_product(&regression("grover"));
}

/// Guard against drift: every circuit in the shared regression list must
/// have a per-circuit sweep above. Adding a circuit to
/// `regression_circuits()` without extending the sweeps fails here.
#[test]
fn every_regression_circuit_is_swept() {
    let names: Vec<String> = common::regression_circuits()
        .iter()
        .map(|c| c.name().to_string())
        .collect();
    assert_eq!(
        names,
        ["ghz_9", "qaoa_8", "grover_6"],
        "regression_circuits() changed — add a matching *_all_algorithms_all_shapes sweep"
    );
}

/// The scalable staging algorithms additionally handle a Grover instance
/// whose ~150-gate staging model is far beyond the exact ILP — the
/// paper's motivation for the structure-exploiting search — on the deep
/// splits, under every kernelizer.
#[test]
fn grover_deep_splits_under_scalable_staging() {
    let circuit = generators::grover(8);
    for staging in [StagingAlgo::IlpSearch, StagingAlgo::Snuqs] {
        for spec in common::machine_shapes(8) {
            for kernelizer in common::all_kernel_algos() {
                common::assert_matches_reference(&circuit, spec, staging, kernelizer);
            }
        }
    }
}

/// The regression circuits also satisfy their analytic structure — a
/// sanity layer underneath the differential one, so a bug that breaks
/// both the pipeline *and* the reference simulator identically still
/// trips an assertion.
#[test]
fn regression_circuits_have_expected_structure() {
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };

    // GHZ(9): all mass on |0…0⟩ and |1…1⟩, half each.
    let ghz = generators::ghz(9);
    let s = common::run_atlas(&ghz, spec);
    assert!((s.probability(0) - 0.5).abs() < 1e-9);
    assert!((s.probability((1 << 9) - 1) - 0.5).abs() < 1e-9);

    // QAOA(8): a unitary circuit — the state stays normalized.
    let qaoa = generators::qaoa(8);
    let s = common::run_atlas(&qaoa, spec);
    let norm: f64 = (0..1u64 << 8).map(|i| s.probability(i)).sum();
    assert!((norm - 1.0).abs() < 1e-9, "norm drifted to {norm}");

    // Grover(8): 5 data qubits + 3 V-chain ancillas; after ⌊π/4·√32⌋
    // rounds the marked item dominates and the ancillas are restored, so
    // one data-register basis state holds most of the probability mass.
    let grover = generators::grover(8);
    let s = common::run_atlas(&grover, spec);
    let (best, p) = (0..1u64 << 8)
        .map(|i| (i, s.probability(i)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert!(p > 0.5, "marked item only reaches p={p}");
    assert!(best < 1 << 5, "ancillas not restored: best index {best:#x}");

    // The same generator call is bit-identical run to run (fixed seed).
    assert_eq!(generators::qaoa(8).gates(), generators::qaoa(8).gates());
    assert_eq!(generators::grover(8).gates(), generators::grover(8).gates());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits over the full gate alphabet, random picks from the
    /// algorithm and machine-shape grids.
    #[test]
    fn random_circuits_under_every_algorithm_combination(
        circuit in common::arb_circuit(7, 30),
        staging_idx in 0usize..3,
        kernel_idx in 0usize..4,
        shape_idx in 0usize..4,
    ) {
        let staging = common::all_staging_algos()[staging_idx];
        let kernelizer = common::all_kernel_algos()[kernel_idx];
        let shapes = common::shapes_for(staging, 7);
        let spec = shapes[shape_idx % shapes.len()];
        common::assert_matches_reference(&circuit, spec, staging, kernelizer);
    }
}
