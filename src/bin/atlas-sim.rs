//! `atlas-sim` — command-line front end for the simulator.
//!
//! Simulate a benchmark family or a QASM file on a configurable simulated
//! cluster, functionally (exact amplitudes) or as a dry-run clock model at
//! paper scale.
//!
//! ```text
//! atlas-sim --family qft -n 12 --nodes 2 --gpus 2 -L 9
//! atlas-sim --qasm circuit.qasm --nodes 1 --gpus 4 -L 24 --dry
//! atlas-sim --family su2random -n 30 -L 26 --dry --baseline hyquas
//! ```

use atlas::baselines;
use atlas::circuit::qasm;
use atlas::prelude::*;
use std::process::ExitCode;

struct Args {
    family: Option<String>,
    qasm_path: Option<String>,
    n: u32,
    nodes: usize,
    gpus_per_node: usize,
    local_qubits: u32,
    dry: bool,
    baseline: Option<String>,
    top: usize,
    plan_only: bool,
    threads: usize,
}

const USAGE: &str = "atlas-sim — distributed quantum circuit simulation (Atlas, SC'24)

USAGE:
    atlas-sim --family <name> -n <qubits> [options]
    atlas-sim --qasm <file> [options]

CIRCUIT:
    --family <name>     ae|dj|ghz|graphstate|ising|qft|qpeexact|qsvm|
                        su2random|vqc|wstate|hhl|qaoa|grover
    -n <qubits>         circuit size (default 10)
    --qasm <file>       read an OpenQASM-2 subset file instead

MACHINE (simulated):
    --nodes <k>         number of nodes, power of two      (default 1)
    --gpus <k>          GPUs per node, power of two        (default 1)
    -L <k>              local qubits per GPU (2^L amps)    (default n)

MODE:
    --dry               clock model only (no amplitudes; any n)
    --plan              print the partition plan and exit
    --baseline <name>   run a comparator instead of Atlas:
                        hyquas|cuquantum|qiskit|qdao
    --top <k>           print the k most probable outcomes (default 8)
    --threads <k>       host threads for functional execution
                        (default: all cores; amplitudes are identical
                        for every value)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        family: None,
        qasm_path: None,
        n: 10,
        nodes: 1,
        gpus_per_node: 1,
        local_qubits: 0,
        dry: false,
        baseline: None,
        top: 8,
        plan_only: false,
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut l_set = false;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--family" => args.family = Some(take(&mut i)?),
            "--qasm" => args.qasm_path = Some(take(&mut i)?),
            "-n" => args.n = take(&mut i)?.parse().map_err(|e| format!("-n: {e}"))?,
            "--nodes" => args.nodes = take(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--gpus" => {
                args.gpus_per_node = take(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?
            }
            "-L" => {
                args.local_qubits = take(&mut i)?.parse().map_err(|e| format!("-L: {e}"))?;
                l_set = true;
            }
            "--dry" => args.dry = true,
            "--plan" => args.plan_only = true,
            "--baseline" => args.baseline = Some(take(&mut i)?),
            "--top" => args.top = take(&mut i)?.parse().map_err(|e| format!("--top: {e}"))?,
            "--threads" => {
                args.threads = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if !l_set {
        args.local_qubits = args.n;
    }
    Ok(args)
}

fn build_circuit(args: &Args) -> Result<Circuit, String> {
    if let Some(path) = &args.qasm_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return qasm::from_qasm(&text).map_err(|e| format!("{path}: {e}"));
    }
    let name = args
        .family
        .as_deref()
        .ok_or("need --family or --qasm (try --help)")?;
    // The regression-circuit generators ride alongside the Table I
    // families.
    match name {
        "qaoa" => return Ok(atlas::circuit::generators::qaoa(args.n)),
        "grover" => return Ok(atlas::circuit::generators::grover(args.n)),
        _ => {}
    }
    let fam = Family::from_name(name).ok_or_else(|| format!("unknown family '{name}'"))?;
    Ok(fam.generate(args.n))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = match build_circuit(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = circuit.num_qubits();
    let spec = MachineSpec {
        nodes: args.nodes,
        gpus_per_node: args.gpus_per_node,
        local_qubits: args.local_qubits.min(n),
    };
    let cost = CostModel::default();
    let dry = args.dry || n > 26;
    if dry && !args.dry {
        eprintln!("note: n = {n} exceeds the functional limit; switching to --dry");
    }

    println!(
        "circuit {} : {} qubits, {} gates, depth {}",
        if circuit.name().is_empty() {
            "<qasm>"
        } else {
            circuit.name()
        },
        n,
        circuit.num_gates(),
        circuit.depth()
    );
    println!(
        "machine : {} node(s) x {} GPU(s), L={} ({} shard(s)){}",
        spec.nodes,
        spec.gpus_per_node,
        spec.local_qubits,
        spec.num_shards(n),
        if spec.offloading(n) {
            ", DRAM offloading"
        } else {
            ""
        }
    );

    let cfg = AtlasConfig {
        final_unpermute: !dry,
        threads: args.threads.max(1),
        ..AtlasConfig::default()
    };

    if args.plan_only {
        let plan = match atlas::core::exec::plan(
            &circuit,
            spec.local_qubits,
            spec.global_qubits(),
            &cost,
            &cfg,
        ) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "plan    : {} stage(s), staging cost {}, kernel cost {:.4} ns/amp",
            plan.stages.len(),
            plan.staging_cost,
            plan.kernel_cost
        );
        for (k, sp) in plan.stages.iter().enumerate() {
            println!(
                "  stage {k}: {} gates, {} kernels, local={:?}",
                sp.stage.gates.len(),
                sp.kernels.len(),
                sp.stage.partition.local
            );
        }
        return ExitCode::SUCCESS;
    }

    let (report, state) = match args.baseline.as_deref() {
        None => {
            let out = match atlas::core::simulate::simulate(&circuit, spec, cost, &cfg, dry) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "plan    : {} stage(s), staging cost {}",
                out.plan.stages.len(),
                out.plan.staging_cost
            );
            (out.report, out.state)
        }
        Some(b) => {
            let r = match b {
                "hyquas" => baselines::hyquas(&circuit, spec, cost, dry),
                "cuquantum" => baselines::cuquantum(&circuit, spec, cost, dry),
                "qiskit" => baselines::qiskit(&circuit, spec, cost, dry),
                "qdao" => baselines::qdao_run(&circuit, spec, cost, spec.local_qubits, 19),
                other => Err(format!("unknown baseline '{other}'")),
            };
            match r {
                Ok(o) => (o.report, o.state),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    println!(
        "model   : total {:.6} s  (compute {:.6}, comm {:.6}, swap {:.6}; {} kernels)",
        report.total_secs, report.compute_secs, report.comm_secs, report.swap_secs, report.kernels
    );
    if let Some(state) = state {
        println!("top outcomes:");
        for (idx, p) in state.top_probabilities(args.top) {
            println!("  |{idx:0width$b}>  p = {p:.6}", width = n as usize);
        }
    }
    ExitCode::SUCCESS
}
