//! `atlas-sim` — command-line front end for the simulator.
//!
//! Simulate a benchmark family or a QASM file on a configurable simulated
//! cluster, functionally (exact amplitudes) or as a dry-run clock model at
//! paper scale. Functional runs read their results out through the
//! sharded measurement engine (`atlas-sampler`): top outcomes, seeded
//! shot samples and Pauli expectations are all computed in place on the
//! distributed state — the full `2^n` vector is never gathered.
//!
//! ```text
//! atlas-sim --family qft -n 12 --nodes 2 --gpus 2 -L 9
//! atlas-sim --family qaoa -n 8 --shots 256 --seed 7
//! atlas-sim --family qaoa -n 8 --sweep 16 --shots 64 --seed 7
//! atlas-sim --family ghz -n 10 --expect ZIIIIIIIIZ
//! atlas-sim --qasm circuit.qasm --nodes 1 --gpus 4 -L 24 --dry
//! atlas-sim serve --nodes 2 --gpus 2 -L 5 < jobs.ndjson
//! ```
//!
//! The `serve` subcommand runs the multi-tenant session pool
//! (`atlas-serve`): NDJSON job lines on stdin, one deterministic
//! response line per job on stdout (submission order), aggregate pool
//! statistics on stderr. See `docs/SERVE.md` for the wire format.
//!
//! Exit codes map [`AtlasError`] variants so scripts can dispatch on the
//! failure family: `0` success, `1` generic runtime failure, `2` usage
//! error / invalid configuration, `3` circuit too small for the machine,
//! `4` staging failed, `5` ILP budget exceeded, `6` invalid plan / plan
//! mismatch, `7` parse error, `8` session pool overloaded, `9` job
//! panicked, `10` resource budget exceeded.

use atlas::baselines;
use atlas::circuit::qasm;
use atlas::core::config::BackendKind;
use atlas::core::session::Planner;
use atlas::core::{noise, BackendRun, SimulatorBackend};
use atlas::prelude::*;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    family: Option<String>,
    qasm_path: Option<String>,
    n: u32,
    nodes: usize,
    gpus_per_node: usize,
    local_qubits: u32,
    dry: bool,
    baseline: Option<String>,
    top: usize,
    /// `--top` appeared explicitly (conflict checks distinguish the
    /// default from a user request).
    top_set: bool,
    plan_only: bool,
    threads: usize,
    shots: usize,
    seed: u64,
    seed_set: bool,
    expect: Vec<String>,
    /// `--sweep N`: plan once, execute N re-parameterized points.
    sweep: usize,
    /// `--profile`: emit the per-stage `StageTiming` breakdown as JSON
    /// lines on stderr.
    profile: bool,
    /// `serve` subcommand: run the multi-tenant session pool over
    /// NDJSON stdin/stdout.
    serve: bool,
    /// `--workers` (serve): pool worker threads (default: all cores).
    workers: usize,
    /// `--queue` (serve): bounded queue capacity.
    queue: usize,
    /// `--cache` (serve): plan-cache capacity.
    cache: usize,
    /// `--fault-seed` (serve): arm the deterministic fault-injection
    /// harness with this RNG seed.
    fault_seed: Option<u64>,
    /// `--fault-rate` (serve): per-site firing rate in ppm.
    fault_rate: u32,
    /// `--fault-rate` appeared explicitly (conflict checks).
    fault_rate_set: bool,
    /// `--threads` appeared explicitly (serve defaults to 1 thread per
    /// job and parallelizes across workers instead).
    threads_set: bool,
    /// `-L` appeared explicitly (serve has no circuit to default from).
    l_set: bool,
    /// `--backend`: which engine runs the circuit (default auto).
    backend: BackendKind,
    /// `--backend` appeared explicitly (conflict checks).
    backend_set: bool,
    /// `--noise p`: depolarizing strength; > 0 switches to the
    /// Pauli-twirled stochastic-trajectory path.
    noise: f64,
    /// `--trajectories k`: trajectory count for `--noise` runs.
    trajectories: usize,
    /// `--trajectories` appeared explicitly (conflict checks).
    trajectories_set: bool,
    /// `--trace FILE`: write a telemetry trace of the run.
    trace: Option<String>,
    /// `--trace-format`: trace file format (default ndjson).
    trace_format: TraceFormat,
    /// `--trace-format` appeared explicitly (conflict checks).
    trace_format_set: bool,
    /// `--analyze`: run the atlas-analyze static plan verifier on the
    /// compiled plan (debug builds always verify; this forces it in
    /// release builds and prints the verification report).
    analyze: bool,
}

const USAGE: &str = "atlas-sim — distributed quantum circuit simulation (Atlas, SC'24)

USAGE:
    atlas-sim --family <name> -n <qubits> [options]
    atlas-sim --qasm <file> [options]
    atlas-sim serve --nodes <k> --gpus <k> -L <k> [serve options]

CIRCUIT:
    --family <name>     ae|dj|ghz|graphstate|ising|qft|qpeexact|qsvm|
                        su2random|vqc|wstate|hhl|qaoa|grover|clifford
    -n <qubits>         circuit size (default 10)
    --qasm <file>       read an OpenQASM-2 subset file instead

BACKEND:
    --backend <name>    auto|statevec|stabilizer (default auto). auto
                        keeps the exact sharded statevector engine for
                        anything it can execute and diverts all-Clifford
                        circuits beyond the functional limit to the CHP
                        stabilizer tableau (any n); stabilizer forces
                        the tableau (all-Clifford circuits only)
    --noise <p>         depolarizing noise of strength p after every
                        gate, simulated as Pauli-twirled stochastic
                        trajectories sharing ONE compiled plan; output
                        is deterministic for a fixed --seed on any
                        --threads; needs --shots and/or --expect
    --trajectories <k>  trajectory count for --noise runs (default 8)

MACHINE (simulated):
    --nodes <k>         number of nodes, power of two      (default 1)
    --gpus <k>          GPUs per node, power of two        (default 1)
    -L <k>              local qubits per GPU (2^L amps)    (default n)

MODE:
    --dry               clock model only (no amplitudes; any n)
    --plan              print the partition plan and exit
    --baseline <name>   run a comparator instead of Atlas:
                        hyquas|cuquantum|qiskit|qdao
    --threads <k>       host threads for functional execution
                        (default: all cores; results are identical
                        for every value)
    --sweep <N>         parameter sweep: plan ONCE, then execute N
                        points of the circuit with shifted gate
                        parameters (same gate graph) — the session
                        API's plan-once/run-many path; per-point
                        execute times go to stderr
    --analyze           statically verify the compiled plan with
                        atlas-analyze before doing anything with it
                        (kernel covers, insularity, reshuffle
                        permutations, clock conservation, shard-write
                        disjointness) and print the verification
                        report to stderr; debug builds always verify,
                        this forces it in release builds too. A
                        rejected plan exits with code 6
    --profile           print each bulk-synchronous step's timing
                        breakdown (compute/comm/swap seconds + bytes
                        moved intra/inter node) as JSON lines on
                        stderr, under an atlas-stage-timing/2 schema
                        header; stdout is unchanged

TRACE (wall-clock telemetry; model-level outputs are unchanged):
    --trace <file>      record per-worker spans (kernel apply, all-to-all
                        reshuffles, barrier waits), planner/sampler/serve
                        phases and the metrics registry, then write them
                        to <file> on exit; stdout stays byte-identical
                        with or without this flag
    --trace-format <f>  ndjson (default; atlas-trace/1 schema, one event
                        per line) or chrome (trace_event JSON — load the
                        file in ui.perfetto.dev or chrome://tracing)

MEASUREMENTS (functional Atlas runs; computed on the sharded state):
    --top <k>           print the k most probable outcomes (default 8)
    --shots <k>         draw k measurement shots and print their counts
    --seed <s>          RNG seed for --shots (default 0; fixed seed =>
                        byte-identical samples for any --threads/shape)
    --expect <paulis>   print the expectation value of a Pauli string
                        (I/X/Y/Z per qubit, leftmost = highest qubit;
                        repeatable)

SERVE (multi-tenant session pool; NDJSON stdin -> stdout):
    serve               read job lines from stdin, answer one response
                        line per job on stdout in submission order
                        (deterministic for a fixed job stream); pool
                        statistics go to stderr; -L is required since
                        each job line carries its own circuit
    --workers <k>       pool worker threads (default: all cores)
    --queue <k>         bounded job-queue capacity (default 64)
    --cache <k>         compiled-plan LRU cache capacity (default 32)
    --fault-seed <s>    arm the deterministic fault-injection harness
                        with RNG seed s: worker panics, forced cancels,
                        deadline pressure and allocation failures are
                        injected as a pure function of (seed, site,
                        job id) — same seed, same storm, any --workers
    --fault-rate <ppm>  per-site firing rate in parts per million for
                        --fault-seed (default 250000)

--dry and --plan contradict --top/--shots/--seed/--expect, --baseline
contradicts --shots/--seed/--expect/--backend/--trace, --sweep
contradicts --dry/--plan/--baseline, --backend stabilizer and --noise
contradict the clock-model flags (--dry/--plan/--sweep/--profile),
--trace-format needs --trace; serve contradicts every circuit, mode
and measurement flag (but keeps --trace); such combinations are
rejected with exit code 2.

EXIT CODES:
    0 success                 4 staging failed    8 pool overloaded
    1 runtime failure         5 ILP budget hit    9 job panicked
    2 usage / invalid config  6 invalid plan     10 resource budget
    3 circuit too small       7 parse error         exceeded
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        family: None,
        qasm_path: None,
        n: 10,
        nodes: 1,
        gpus_per_node: 1,
        local_qubits: 0,
        dry: false,
        baseline: None,
        top: 8,
        top_set: false,
        plan_only: false,
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        shots: 0,
        seed: 0,
        seed_set: false,
        expect: Vec::new(),
        sweep: 0,
        profile: false,
        serve: false,
        workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
        queue: 64,
        cache: 32,
        fault_seed: None,
        fault_rate: 250_000,
        fault_rate_set: false,
        threads_set: false,
        l_set: false,
        backend: BackendKind::Auto,
        backend_set: false,
        noise: 0.0,
        trajectories: 8,
        trajectories_set: false,
        trace: None,
        trace_format: TraceFormat::Ndjson,
        trace_format_set: false,
        analyze: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut l_set = false;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--family" => args.family = Some(take(&mut i)?),
            "--qasm" => args.qasm_path = Some(take(&mut i)?),
            "-n" => args.n = take(&mut i)?.parse().map_err(|e| format!("-n: {e}"))?,
            "--nodes" => args.nodes = take(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--gpus" => {
                args.gpus_per_node = take(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?
            }
            "-L" => {
                args.local_qubits = take(&mut i)?.parse().map_err(|e| format!("-L: {e}"))?;
                l_set = true;
            }
            "--dry" => args.dry = true,
            "--plan" => args.plan_only = true,
            "--baseline" => args.baseline = Some(take(&mut i)?),
            "--top" => {
                args.top = take(&mut i)?.parse().map_err(|e| format!("--top: {e}"))?;
                args.top_set = true;
            }
            "--threads" => {
                args.threads = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                args.threads_set = true;
            }
            "serve" => args.serve = true,
            "--workers" => {
                args.workers = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => args.queue = take(&mut i)?.parse().map_err(|e| format!("--queue: {e}"))?,
            "--cache" => args.cache = take(&mut i)?.parse().map_err(|e| format!("--cache: {e}"))?,
            "--fault-seed" => {
                args.fault_seed = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--fault-rate" => {
                args.fault_rate = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?;
                args.fault_rate_set = true;
            }
            "--shots" => args.shots = take(&mut i)?.parse().map_err(|e| format!("--shots: {e}"))?,
            "--seed" => {
                args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                args.seed_set = true;
            }
            "--expect" => args.expect.push(take(&mut i)?),
            "--backend" => {
                args.backend = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--backend: {e}"))?;
                args.backend_set = true;
            }
            "--noise" => args.noise = take(&mut i)?.parse().map_err(|e| format!("--noise: {e}"))?,
            "--trajectories" => {
                args.trajectories = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--trajectories: {e}"))?;
                args.trajectories_set = true;
            }
            "--sweep" => args.sweep = take(&mut i)?.parse().map_err(|e| format!("--sweep: {e}"))?,
            "--analyze" => args.analyze = true,
            "--profile" => args.profile = true,
            "--trace" => args.trace = Some(take(&mut i)?),
            "--trace-format" => {
                args.trace_format = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--trace-format: {e}"))?;
                args.trace_format_set = true;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if !l_set {
        args.local_qubits = args.n;
    }
    args.l_set = l_set;
    Ok(args)
}

/// Rejects contradictory flag combinations (the measurement flags only
/// make sense on a functional Atlas run). Returns a usage-error message.
fn check_flag_conflicts(args: &Args) -> Result<(), String> {
    let wants_measurements =
        args.shots > 0 || args.seed_set || args.top_set || !args.expect.is_empty();
    let measurement_flags = |a: &Args| -> String {
        let mut f = Vec::new();
        if a.top_set {
            f.push("--top");
        }
        if a.shots > 0 {
            f.push("--shots");
        }
        if a.seed_set {
            f.push("--seed");
        }
        if !a.expect.is_empty() {
            f.push("--expect");
        }
        f.join("/")
    };
    if args.trace_format_set && args.trace.is_none() {
        return Err("--trace-format selects the --trace file format; it needs --trace".to_string());
    }
    if args.serve {
        if args.family.is_some() || args.qasm_path.is_some() {
            return Err("serve reads its circuits from NDJSON job lines; \
                 it contradicts --family/--qasm"
                .to_string());
        }
        if args.dry || args.plan_only || args.baseline.is_some() || args.sweep > 0 || args.profile {
            return Err(
                "serve contradicts the run-mode flags --dry/--plan/--baseline/--sweep/--profile"
                    .to_string(),
            );
        }
        if wants_measurements {
            return Err(format!(
                "serve jobs carry their own measurement requests; serve contradicts {}",
                measurement_flags(args)
            ));
        }
        if args.backend_set || args.noise > 0.0 || args.trajectories_set {
            return Err("serve jobs run on the pool's own plans; serve contradicts \
                 --backend/--noise/--trajectories"
                .to_string());
        }
        if !args.l_set {
            return Err("serve needs an explicit -L (each job line carries its own \
                 circuit, so there is no -n to default from)"
                .to_string());
        }
        if args.fault_rate_set && args.fault_seed.is_none() {
            return Err("--fault-rate tunes the fault-injection harness; it needs \
                 --fault-seed"
                .to_string());
        }
        return Ok(());
    }
    // `--workers/--queue/--cache` (and the fault harness) shape the
    // session pool only.
    if args.workers != std::thread::available_parallelism().map_or(1, |p| p.get())
        || args.queue != 64
        || args.cache != 32
    {
        return Err("--workers/--queue/--cache apply to the serve subcommand only".to_string());
    }
    if args.fault_seed.is_some() || args.fault_rate_set {
        return Err("--fault-seed/--fault-rate apply to the serve subcommand only".to_string());
    }
    if args.dry && wants_measurements {
        return Err(format!(
            "--dry runs the clock model only (no amplitudes); it contradicts {}",
            measurement_flags(args)
        ));
    }
    if args.plan_only && wants_measurements {
        return Err(format!(
            "--plan stops before execution; it contradicts {}",
            measurement_flags(args)
        ));
    }
    if args.baseline.is_some() && (args.shots > 0 || args.seed_set || !args.expect.is_empty()) {
        return Err(
            "--baseline comparators have no sharded measurement engine; \
             --shots/--seed/--expect need the Atlas path"
                .to_string(),
        );
    }
    if args.baseline.is_some() && args.trace.is_some() {
        return Err(
            "--baseline comparators bypass the instrumented Atlas path; it contradicts --trace"
                .to_string(),
        );
    }
    if args.sweep > 0 {
        if args.dry {
            return Err("--sweep re-executes amplitudes; it contradicts --dry".to_string());
        }
        if args.plan_only {
            return Err("--plan stops before execution; it contradicts --sweep".to_string());
        }
        if args.baseline.is_some() {
            return Err("--baseline comparators have no plan-once/run-many path; \
                 --sweep needs the Atlas session API"
                .to_string());
        }
    }
    if args.profile && args.plan_only {
        return Err("--plan stops before execution; it contradicts --profile".to_string());
    }
    if args.backend_set && args.baseline.is_some() {
        return Err(
            "--baseline comparators bypass the backend dispatch; it contradicts --backend"
                .to_string(),
        );
    }
    if args.backend == BackendKind::Stabilizer
        && (args.dry || args.plan_only || args.sweep > 0 || args.profile)
    {
        return Err("--backend stabilizer runs functionally on the tableau; it \
             contradicts --dry/--plan/--sweep/--profile"
            .to_string());
    }
    if args.noise > 0.0 {
        if args.dry || args.plan_only || args.baseline.is_some() || args.sweep > 0 || args.profile {
            return Err("--noise draws stochastic trajectories; it contradicts \
                 --dry/--plan/--baseline/--sweep/--profile"
                .to_string());
        }
        if args.top_set {
            return Err(
                "--noise reports aggregated shot counts, not exact amplitudes; \
                 it contradicts --top"
                    .to_string(),
            );
        }
        if args.shots == 0 && args.expect.is_empty() {
            return Err("--noise has nothing to report without --shots or --expect".to_string());
        }
    } else if args.trajectories_set {
        return Err("--trajectories applies to --noise runs only".to_string());
    }
    // Note: --seed without --shots (or --noise) is rejected by the
    // AtlasConfig builder (an InvalidConfig), not by a flag check here.
    Ok(())
}

/// Maps an [`AtlasError`] to this binary's documented exit codes, after
/// printing it. Distinct failure families get distinct codes so scripts
/// (and the CI smoke step) can dispatch without parsing stderr.
fn error_exit(e: &atlas::core::AtlasError) -> ExitCode {
    use atlas::core::AtlasError::*;
    eprintln!("error: {e}");
    ExitCode::from(match e {
        InvalidConfig { .. } => 2,
        CircuitTooSmall { .. } => 3,
        StagingFailed { .. } => 4,
        IlpBudgetExceeded { .. } => 5,
        InvalidPlan { .. } | PlanMismatch { .. } => 6,
        ParseError { .. } => 7,
        Overloaded { .. } => 8,
        JobPanicked { .. } => 9,
        ResourceExhausted { .. } => 10,
        // Future variants (the enum is non_exhaustive): generic failure.
        _ => 1,
    })
}

fn build_circuit(args: &Args) -> Result<Circuit, String> {
    if let Some(path) = &args.qasm_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return qasm::from_qasm(&text).map_err(|e| format!("{path}: {e}"));
    }
    let name = args
        .family
        .as_deref()
        .ok_or("need --family or --qasm (try --help)")?;
    // The regression-circuit generators ride alongside the Table I
    // families.
    match name {
        "qaoa" => return Ok(atlas::circuit::generators::qaoa(args.n)),
        "grover" => return Ok(atlas::circuit::generators::grover(args.n)),
        "clifford" => return Ok(atlas::circuit::generators::clifford(args.n)),
        _ => {}
    }
    let fam = Family::from_name(name).ok_or_else(|| format!("unknown family '{name}'"))?;
    Ok(fam.generate(args.n))
}

/// Exit code 2: usage error.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// The `serve` subcommand: NDJSON job lines on stdin, one response line
/// per job on stdout in **submission order** (so a fixed job stream
/// yields byte-identical output for any worker count or cache state),
/// aggregate pool statistics on stderr.
///
/// Unparseable lines produce an in-band `"kind":"parse-error"` response
/// at their position instead of aborting the stream; job-level failures
/// likewise answer in-band. The process exits 0 as long as the stream
/// itself was served.
fn run_serve(args: &Args) -> ExitCode {
    use atlas::serve::{
        json, parse_line, render_response, render_stats, FaultPlan, JobLine, ServeConfig,
        SessionPool,
    };
    use std::io::BufRead;
    use std::time::Duration;

    // One thread per job by default: serve parallelizes across workers,
    // not inside a job (results are identical either way).
    let threads = if args.threads_set { args.threads } else { 1 };
    let recorder = if args.trace.is_some() {
        Recorder::enabled()
    } else {
        Recorder::default()
    };
    let cfg = match AtlasConfig::builder()
        .threads(threads)
        .recorder(recorder.clone())
        .memory_budget(MemoryBudget::bytes(MemoryBudget::SINGLE_HOST))
        .build()
    {
        Ok(c) => c,
        Err(e) => return error_exit(&e),
    };
    let spec = MachineSpec {
        nodes: args.nodes,
        gpus_per_node: args.gpus_per_node,
        local_qubits: args.local_qubits,
    };
    let fault_plan = match args.fault_seed {
        Some(seed) => FaultPlan::seeded(seed, args.fault_rate),
        None => FaultPlan::disabled(),
    };
    let serve_cfg = ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        cache_capacity: args.cache,
        fault_plan,
    };
    let pool = match SessionPool::new(spec, CostModel::default(), cfg, serve_cfg) {
        Ok(p) => p,
        Err(e) => return error_exit(&e),
    };
    eprintln!(
        "serve   : {} node(s) x {} GPU(s), L={}; {} worker(s), queue {}, plan cache {}",
        args.nodes, args.gpus_per_node, args.local_qubits, args.workers, args.queue, args.cache
    );
    if let Some(seed) = args.fault_seed {
        eprintln!(
            "serve   : fault injection armed (seed {seed}, rate {} ppm/site)",
            args.fault_rate
        );
    }

    /// A response slot, in submission order.
    enum Pending {
        /// Answered at parse time (malformed line).
        Ready(String),
        /// Waiting on the pool.
        Waiting(String, atlas::serve::JobHandle),
    }
    let mut pending: Vec<Pending> = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: stdin: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Err(e) => pending.push(Pending::Ready(format!(
                r#"{{"id":null,"ok":false,"kind":"parse-error","error":"{}"}}"#,
                json::escape(&e)
            ))),
            // A stats line is a synchronous barrier: stdin is processed
            // serially, so draining the pool here makes the snapshot a
            // pure function of the preceding job lines — deterministic
            // for any --workers.
            Ok(JobLine::Stats { id }) => {
                pool.wait_idle();
                pending.push(Pending::Ready(render_stats(&id, &pool.stats())));
            }
            // Backpressure: block for queue space rather than dropping
            // jobs read from a pipe; a `deadline_ms` bounds both the
            // queue wait and the job itself. Submission failures
            // (admission, deadline expiry while queued) answer in-band
            // at the job's position — one bad job never aborts the
            // stream.
            Ok(JobLine::Job(job)) => {
                let submitted = match job.deadline_ms {
                    Some(ms) => pool.submit_with_deadline(
                        &job.tenant,
                        job.circuit,
                        job.request,
                        Duration::from_millis(ms),
                    ),
                    None => pool.submit_blocking(&job.tenant, job.circuit, job.request),
                };
                match submitted {
                    Ok(handle) => pending.push(Pending::Waiting(job.id, handle)),
                    Err(e) => pending.push(Pending::Ready(render_response(&job.id, &Err(e)))),
                }
            }
        }
    }
    for slot in pending {
        match slot {
            Pending::Ready(line) => println!("{line}"),
            Pending::Waiting(id, handle) => {
                println!("{}", render_response(&id, &handle.wait()));
            }
        }
    }
    let stats = pool.shutdown();
    eprintln!(
        "serve   : {} job(s): {} ok, {} failed, {} cancelled, {} deadline-exceeded, \
         {} panicked, {} rejected; plan cache {}/{} hit(s) ({} evicted, {} resident); \
         peak queue {}",
        stats.jobs_submitted,
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_cancelled,
        stats.jobs_deadline_exceeded,
        stats.jobs_panicked,
        stats.jobs_rejected,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stats.cache_evictions,
        stats.cache_entries,
        stats.max_queued,
    );
    eprintln!(
        "scratch : offset-table memo {} hit(s) / {} miss(es), {} eviction(s)",
        stats.scratch_table_hits, stats.scratch_table_misses, stats.scratch_table_evictions
    );
    finish_with_trace(args, &recorder, "statevec", threads)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage_error(&e),
    };
    if let Err(e) = check_flag_conflicts(&args) {
        return usage_error(&e);
    }
    if args.serve {
        return run_serve(&args);
    }
    let circuit = match build_circuit(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = circuit.num_qubits();
    // Build the config first: like the flag-conflict checks above, an
    // incoherent configuration (seed without shots, zero threads, …) is
    // a usage error that must reject before any banner reaches stdout.
    // Coherence rules live in the AtlasConfig builder, not here.
    // The recorder is enabled iff `--trace` asked for it: disabled, every
    // instrumentation site is one branch; enabled, wall-clock rides the
    // trace channel only, so stdout stays byte-identical either way.
    let recorder = if args.trace.is_some() {
        Recorder::enabled()
    } else {
        Recorder::default()
    };
    // The CLI is the single-host entry point: functional requests are
    // admitted against a 3 GiB peak-state budget (which admits exactly
    // the n ≤ 26 circuits the historical heuristic did) and rejected
    // with a typed ResourceExhausted instead of an allocator abort.
    let budget = MemoryBudget::bytes(MemoryBudget::SINGLE_HOST);
    let mut builder = AtlasConfig::builder()
        .threads(args.threads)
        .shots(args.shots)
        .backend(args.backend)
        .noise(args.noise)
        .trajectories(args.trajectories)
        .memory_budget(budget)
        .recorder(recorder.clone());
    if args.seed_set {
        builder = builder.seed(args.seed);
    }
    let cfg = match builder.build() {
        Ok(c) => c,
        Err(e) => return error_exit(&e),
    };
    // Validate --expect widths before spending any simulation time.
    let mut paulis: Vec<PauliString> = Vec::new();
    for s in &args.expect {
        match s.parse::<PauliString>() {
            Ok(p) if p.num_qubits() == n => paulis.push(p),
            Ok(p) => {
                return usage_error(&format!(
                    "--expect {s}: Pauli string spans {} qubits, circuit has {n}",
                    p.num_qubits()
                ))
            }
            Err(e) => {
                eprintln!("in --expect {s}:");
                return error_exit(&e);
            }
        }
    }
    // Engine dispatch. The statevector path below stays the default and
    // is byte-identical to previous releases; the tableau path takes
    // over when `--backend stabilizer` forces it, or when auto dispatch
    // meets an all-Clifford circuit too wide for a functional
    // statevector run (where the only legacy option was --dry).
    let clifford = circuit.is_clifford();
    if args.noise > 0.0 {
        // Noise needs a functional engine: a non-Clifford circuit over
        // the memory budget cannot run at all.
        if !clifford && !budget.admits(n, args.local_qubits.min(n)) {
            return error_exit(&AtlasError::ResourceExhausted {
                needed: MemoryBudget::peak_bytes(n, args.local_qubits.min(n)),
                budget: budget.enforced(),
            });
        }
        return run_noisy_path(&args, &circuit, cfg, &paulis);
    }
    let use_stabilizer = args.backend == BackendKind::Stabilizer
        || (args.backend == BackendKind::Auto
            && clifford
            && !budget.admits(n, args.local_qubits.min(n))
            && !args.dry
            && !args.plan_only
            && args.baseline.is_none()
            && args.sweep == 0
            && !args.profile);
    if use_stabilizer {
        return run_stabilizer_path(&args, &circuit, cfg, &paulis);
    }
    let spec = MachineSpec {
        nodes: args.nodes,
        gpus_per_node: args.gpus_per_node,
        local_qubits: args.local_qubits.min(n),
    };
    let cost = CostModel::default();
    // Typed up-front check: the machine banner below (shard counts,
    // offloading) would otherwise assert inside MachineSpec first.
    if n < spec.local_qubits + spec.global_qubits() {
        return error_exit(&AtlasError::CircuitTooSmall {
            qubits: n,
            local: spec.local_qubits,
            global: spec.global_qubits(),
        });
    }
    let dry = args.dry || !budget.admits(n, spec.local_qubits);
    if dry && !args.dry {
        // Measurement flags need a functional run; the budget rejection
        // is typed (exit 10), never an allocator abort.
        if args.shots > 0 || !paulis.is_empty() || args.top_set || args.sweep > 0 {
            return error_exit(&AtlasError::ResourceExhausted {
                needed: MemoryBudget::peak_bytes(n, spec.local_qubits),
                budget: budget.enforced(),
            });
        }
        eprintln!(
            "note: n = {n} exceeds the functional memory budget \
             (max {} qubits at L={}); switching to --dry",
            budget.max_functional_qubits(spec.local_qubits),
            spec.local_qubits
        );
    }

    print_circuit_banner(&circuit, n);
    println!(
        "machine : {} node(s) x {} GPU(s), L={} ({} shard(s)){}",
        spec.nodes,
        spec.gpus_per_node,
        spec.local_qubits,
        spec.num_shards(n),
        if spec.offloading(n) {
            ", DRAM offloading"
        } else {
            ""
        }
    );

    // The Atlas path below never gathers the state: `--top`, `--shots`
    // and `--expect` all read through the sharded measurement engine,
    // so no final unpermute pass is needed either.
    if let Some(b) = args.baseline.as_deref() {
        let r = match b {
            "hyquas" => baselines::hyquas(&circuit, spec, cost, dry),
            "cuquantum" => baselines::cuquantum(&circuit, spec, cost, dry),
            "qiskit" => baselines::qiskit(&circuit, spec, cost, dry),
            "qdao" => baselines::qdao_run(&circuit, spec, cost, spec.local_qubits, 19),
            other => {
                eprintln!("error: unknown baseline '{other}'");
                return ExitCode::FAILURE;
            }
        };
        let o = match r {
            Ok(o) => o,
            Err(e) => return error_exit(&e),
        };
        print_report(&o.report);
        if args.profile {
            print_profile(&o.report, b);
        }
        // Baselines gather a dense state; `--top` stays available.
        if let Some(state) = o.state {
            println!("top outcomes:");
            for (idx, p) in state.top_probabilities(args.top) {
                println!("  |{idx:0width$b}>  p = {p:.6}", width = n as usize);
            }
        }
        return ExitCode::SUCCESS;
    }

    // The Atlas path: one Planner, one CompiledPlan — executed zero
    // (--plan), one (default), or N (--sweep) times.
    let planner = Planner::new(spec, cost, cfg);
    let t_plan = Instant::now();
    let compiled = match planner.plan(&circuit) {
        Ok(c) => c,
        Err(e) => return error_exit(&e),
    };
    let plan_secs = t_plan.elapsed().as_secs_f64();
    // Static plan verification (atlas-analyze): always in debug builds,
    // on demand (--analyze) in release builds. A plan the verifier
    // rejects never reaches execution.
    if cfg!(debug_assertions) || args.analyze {
        match atlas::analyze::verify_plan(&circuit, compiled.plan(), compiled.cost()) {
            Ok(report) => {
                if args.analyze {
                    eprintln!("analyze : ok — {report}");
                }
            }
            Err(violation) => return error_exit(&violation.into()),
        }
    }
    let plan = compiled.plan();
    // Budget-limited plans must be visible, not silent: the generic
    // ILP's verdict rides on the plan (`None` for the other stagers).
    let status_note = match plan.solve_status {
        Some(atlas::ilp::SolveStatus::Feasible) => {
            " (ILP budget hit: best incumbent, not proven optimal)"
        }
        _ => "",
    };

    if args.plan_only {
        println!(
            "plan    : {} stage(s), staging cost {}, kernel cost {:.4} ns/amp{status_note}",
            plan.stages.len(),
            plan.staging_cost,
            plan.kernel_cost
        );
        for (k, sp) in plan.stages.iter().enumerate() {
            println!(
                "  stage {k}: {} gates, {} kernels, local={:?}",
                sp.stage.gates.len(),
                sp.kernels.len(),
                sp.stage.partition.local
            );
        }
        return finish_with_trace(&args, &recorder, "statevec", args.threads);
    }

    println!(
        "plan    : {} stage(s), staging cost {}{status_note}",
        plan.stages.len(),
        plan.staging_cost
    );

    if dry {
        let report = compiled.dry_run();
        print_report(&report);
        if args.profile {
            print_profile(&report, "statevec");
        }
        return finish_with_trace(&args, &recorder, "statevec", args.threads);
    }

    if args.sweep > 0 {
        // Plan-once/run-many: the CompiledPlan above is reused for every
        // point; only gate parameters change. Wall-clock timings go to
        // stderr so stdout stays byte-deterministic.
        eprintln!(
            "sweep   : planned once in {plan_secs:.3} s; executing {} point(s)",
            args.sweep
        );
        for i in 0..args.sweep {
            let point = circuit.map_params(|_, _, p| p + 0.1 * i as f64);
            let t_exec = Instant::now();
            let run = match compiled.execute(&point) {
                Ok(r) => r,
                Err(e) => return error_exit(&e),
            };
            eprintln!(
                "point {i} : execute {:.3} s",
                t_exec.elapsed().as_secs_f64()
            );
            if args.profile {
                print_profile(&run.report, "statevec");
            }
            println!("point {i} :");
            print_measurements(&run.measurements, run.samples, &args, &paulis, n);
        }
        return finish_with_trace(&args, &recorder, "statevec", args.threads);
    }

    let run = match compiled.execute(&circuit) {
        Ok(r) => r,
        Err(e) => return error_exit(&e),
    };
    print_report(&run.report);
    if args.profile {
        print_profile(&run.report, "statevec");
    }
    print_measurements(&run.measurements, run.samples, &args, &paulis, n);
    finish_with_trace(&args, &recorder, "statevec", args.threads)
}

/// The stabilizer (CHP tableau) functional path: no machine shape, no
/// staging — `plan_backend` fingerprints the circuit and `run` replays
/// it on the tableau in polynomial time. Reached when `--backend
/// stabilizer` forces it or when auto dispatch meets an all-Clifford
/// circuit beyond the statevector functional limit.
fn run_stabilizer_path(
    args: &Args,
    circuit: &Circuit,
    cfg: AtlasConfig,
    paulis: &[PauliString],
) -> ExitCode {
    let recorder = cfg.recorder.clone();
    let n = circuit.num_qubits();
    if args.top_set && n > 30 {
        return usage_error(&format!(
            "--top enumerates amplitudes through the tableau->statevector \
             conversion (n <= 30); n = {n} supports --shots/--expect only"
        ));
    }
    // The tableau needs no machine, but the Planner does: a minimal
    // single-GPU spec keeps MachineSpec invariants satisfied at any n.
    let planner = Planner::new(
        MachineSpec::single_gpu(n.min(26)),
        CostModel::default(),
        cfg,
    );
    let plan = match planner.plan_backend(circuit) {
        Ok(p) => p,
        Err(e) => return error_exit(&e),
    };
    print_circuit_banner(circuit, n);
    println!(
        "backend : stabilizer (CHP tableau, {} word(s)/row; no machine shape)",
        (n as usize).div_ceil(64)
    );
    let t_run = Instant::now();
    let run = match plan.run(circuit) {
        Ok(r) => r,
        Err(e) => return error_exit(&e),
    };
    eprintln!(
        "tableau : replayed {} gate(s) in {:.3} s",
        circuit.num_gates(),
        t_run.elapsed().as_secs_f64()
    );
    for p in paulis {
        println!("expect  : <{p}> = {:.9}", run.expectation(p));
    }
    if let Some(samples) = run.samples_words() {
        let shots = samples.len();
        println!("shots   : {shots} (seed {})", args.seed);
        print_word_counts(&count_word_samples(samples), shots, n);
    }
    // Same default-readout rule as the statevector path: top outcomes
    // unless shots/expectations were explicitly requested.
    if args.top_set || (args.shots == 0 && paulis.is_empty()) {
        let BackendRun::Stabilizer(ref srun) = run else {
            unreachable!("stabilizer path produced a statevector run");
        };
        if n <= 30 {
            let state = match srun.tableau.to_statevector() {
                Ok(s) => s,
                Err(e) => return error_exit(&e),
            };
            println!("top outcomes:");
            for (idx, p) in state.top_probabilities(args.top) {
                println!("  |{idx:0width$b}>  p = {p:.6}", width = n as usize);
            }
        } else {
            // Too wide to enumerate amplitudes: report the support size
            // (2^k for k X-pivots in the canonical stabilizer set).
            let pivots = srun
                .tableau
                .canonical_stabilizers()
                .iter()
                .filter(|(x, _, _)| x.iter().any(|&w| w != 0))
                .count();
            println!("support : 2^{pivots} basis state(s) with nonzero amplitude");
        }
    }
    finish_with_trace(args, &recorder, "stabilizer", args.threads)
}

/// The Pauli-twirled stochastic-trajectory path (`--noise p`): one
/// noisy template, ONE compiled plan on whichever engine dispatch
/// picks, `--trajectories` re-parameterizations of the noise slots.
/// Output is deterministic for a fixed `--seed` on any `--threads`.
fn run_noisy_path(
    args: &Args,
    circuit: &Circuit,
    cfg: AtlasConfig,
    paulis: &[PauliString],
) -> ExitCode {
    let recorder = cfg.recorder.clone();
    let n = circuit.num_qubits();
    let spec = MachineSpec {
        nodes: args.nodes,
        gpus_per_node: args.gpus_per_node,
        local_qubits: args.local_qubits.min(n),
    };
    let template = noise::noisy_template(circuit);
    let planner = Planner::new(spec, CostModel::default(), cfg);
    let t_plan = Instant::now();
    let plan = match planner.plan_backend(&template) {
        Ok(p) => p,
        Err(e) => return error_exit(&e),
    };
    let cfg = plan.config();
    print_circuit_banner(circuit, n);
    println!(
        "backend : {} (noise p = {}, {} trajectorie(s), seed {})",
        plan.backend_name(),
        cfg.noise,
        cfg.trajectories,
        cfg.seed
    );
    eprintln!(
        "noise   : planned the template once in {:.3} s ({} noise slot(s))",
        t_plan.elapsed().as_secs_f64(),
        template.num_gates() - circuit.num_gates()
    );
    if !paulis.is_empty() {
        // Channel expectations: the mean over trajectories converges to
        // the depolarizing channel's output expectation.
        let k = cfg.trajectories.max(1);
        let mut sums = vec![0.0; paulis.len()];
        for t in 0..k {
            let point = noise::trajectory(&template, cfg.noise, cfg.seed, t as u64);
            let run = match plan.run(&point) {
                Ok(r) => r,
                Err(e) => return error_exit(&e),
            };
            for (s, p) in sums.iter_mut().zip(paulis) {
                *s += run.expectation(p);
            }
        }
        for (s, p) in sums.iter().zip(paulis) {
            println!(
                "expect  : <{p}> = {:.9} (mean over {k} trajectorie(s))",
                s / k as f64
            );
        }
    }
    if args.shots > 0 {
        let out = match noise::run_noisy(&plan, &template, args.shots) {
            Ok(o) => o,
            Err(e) => return error_exit(&e),
        };
        println!(
            "shots   : {} over {} trajectorie(s) (seed {})",
            out.shots, out.trajectories, args.seed
        );
        let mut counts = out.counts;
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        print_word_counts(&counts, out.shots, n);
    }
    let backend = plan.backend_name();
    finish_with_trace(args, &recorder, backend, args.threads)
}

fn print_circuit_banner(circuit: &Circuit, n: u32) {
    println!(
        "circuit {} : {} qubits, {} gates, depth {}",
        if circuit.name().is_empty() {
            "<qasm>"
        } else {
            circuit.name()
        },
        n,
        circuit.num_gates(),
        circuit.depth()
    );
}

/// Renders a bit-packed outcome (bit `q % 64` of word `q / 64` is qubit
/// `q`) as an `n`-bit binary string, highest qubit leftmost — matching
/// the single-word `|{bits:0n$b}>` format at any width.
fn format_bits(words: &[u64], n: u32) -> String {
    (0..n)
        .rev()
        .map(|q| {
            if words[q as usize / 64] >> (q % 64) & 1 == 1 {
                '1'
            } else {
                '0'
            }
        })
        .collect()
}

/// Counts multi-word samples in `count_samples` order: descending
/// count, ties ascending.
fn count_word_samples(samples: Vec<Vec<u64>>) -> Vec<(Vec<u64>, u64)> {
    let mut map: std::collections::BTreeMap<Vec<u64>, u64> = std::collections::BTreeMap::new();
    for s in samples {
        *map.entry(s).or_insert(0) += 1;
    }
    let mut counts: Vec<_> = map.into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
}

/// Prints word-packed shot counts in the statevector path's
/// `print_measurements` format.
fn print_word_counts(counts: &[(Vec<u64>, u64)], shots: usize, n: u32) {
    const MAX_LINES: usize = 32;
    for (bits, count) in counts.iter().take(MAX_LINES) {
        println!(
            "  |{}>  x {count}  (p^ = {:.6})",
            format_bits(bits, n),
            *count as f64 / shots as f64
        );
    }
    if counts.len() > MAX_LINES {
        let rest: u64 = counts[MAX_LINES..].iter().map(|&(_, c)| c).sum();
        println!(
            "  ... {} more outcomes ({} shots)",
            counts.len() - MAX_LINES,
            rest
        );
    }
}

fn print_report(report: &atlas::machine::MachineReport) {
    println!(
        "model   : total {:.6} s  (compute {:.6}, comm {:.6}, swap {:.6}; {} kernels)",
        report.total_secs, report.compute_secs, report.comm_secs, report.swap_secs, report.kernels
    );
}

/// Host CPU count (the `--threads`/`--workers` default).
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// `--trace FILE`: drains the recorder and writes the trace (no-op
/// without the flag). The same `StageTiming` charge sites feed both this
/// trace's `machine.step` counters and `--profile`'s per-step lines, so
/// the two views can never disagree.
fn write_trace(
    args: &Args,
    recorder: &Recorder,
    backend: &str,
    threads: usize,
) -> Result<(), String> {
    let Some(path) = args.trace.as_deref() else {
        return Ok(());
    };
    let meta = TraceMeta {
        source: if args.serve {
            "atlas-serve"
        } else {
            "atlas-sim"
        }
        .to_string(),
        backend: backend.to_string(),
        host_cpus: host_cpus(),
        threads,
    };
    let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    atlas::telemetry::export(recorder, &mut w, args.trace_format, &meta)
        .map_err(|e| format!("--trace {path}: {e}"))?;
    eprintln!(
        "trace   : wrote {} trace to {path} ({} event(s) dropped)",
        args.trace_format.name(),
        recorder.dropped()
    );
    Ok(())
}

/// [`write_trace`] at a success exit: any I/O failure downgrades the
/// run to a generic runtime failure.
fn finish_with_trace(args: &Args, recorder: &Recorder, backend: &str, threads: usize) -> ExitCode {
    match write_trace(args, recorder, backend, threads) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--profile`: a schema header, then one JSON object per
/// bulk-synchronous step on stderr, in execution order — compute steps
/// alternate with all-to-all transitions. Stderr keeps stdout
/// byte-deterministic for diffing across thread counts; JSON lines make
/// the breakdown machine-consumable (`jq -s`). The per-step values are
/// the same `StageTiming`s the telemetry layer's `machine.step` counters
/// carry — one charge site feeds both.
fn print_profile(report: &atlas::machine::MachineReport, backend: &str) {
    eprintln!(
        "{{\"schema\":\"atlas-stage-timing/2\",\"backend\":\"{backend}\",\
         \"host_cpus\":{},\"steps\":{}}}",
        host_cpus(),
        report.per_step.len()
    );
    for (i, st) in report.per_step.iter().enumerate() {
        eprintln!(
            "{{\"stage\":{i},\"compute_secs\":{:.9},\"comm_secs\":{:.9},\"swap_secs\":{:.9},\
             \"bytes_intra\":{},\"bytes_inter\":{}}}",
            st.compute, st.comm, st.swap, st.bytes_intra, st.bytes_inter
        );
    }
}

/// Functional-run output through the sharded measurement engine.
/// `samples` are the shots `simulate` already drew from
/// `cfg.shots`/`cfg.seed`.
fn print_measurements(
    m: &Measurements,
    samples: Option<Vec<u64>>,
    args: &Args,
    paulis: &[PauliString],
    n: u32,
) {
    let width = n as usize;
    for p in paulis {
        println!("expect  : <{p}> = {:.9}", m.expectation(p));
    }
    if let Some(samples) = samples {
        println!("shots   : {} (seed {})", samples.len(), args.seed);
        let counts = atlas::sampler::count_samples(samples);
        const MAX_LINES: usize = 32;
        for &(bits, count) in counts.iter().take(MAX_LINES) {
            println!(
                "  |{bits:0width$b}>  x {count}  (p^ = {:.6})",
                count as f64 / args.shots as f64
            );
        }
        if counts.len() > MAX_LINES {
            let rest: u64 = counts[MAX_LINES..].iter().map(|&(_, c)| c).sum();
            println!(
                "  ... {} more outcomes ({} shots)",
                counts.len() - MAX_LINES,
                rest
            );
        }
    }
    // Top outcomes stay the default readout; once the user asked for
    // shots or expectations they appear only on explicit request.
    if args.top_set || (args.shots == 0 && paulis.is_empty()) {
        println!("top outcomes:");
        for (idx, p) in m.top(args.top) {
            println!("  |{idx:0width$b}>  p = {p:.6}");
        }
    }
}
