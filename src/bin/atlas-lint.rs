//! `atlas-lint` — the workspace determinism lint.
//!
//! Atlas' plans, fingerprints, and samples must be bit-reproducible across
//! processes and machines: a plan-affecting code path that reads the wall
//! clock, iterates a randomly-seeded hash table, or draws from an OS RNG
//! breaks the differential suites and the serve pool's cross-tenant plan
//! cache. This binary scans the determinism-critical crates for those
//! patterns (plus undocumented `unsafe`), with no dependencies beyond the
//! standard library — the scanner is a hand-rolled Rust lexer in the
//! style of `crates/serve/src/json.rs`.
//!
//! ## Rules
//!
//! | rule | flags | scope |
//! |------|-------|-------|
//! | `wall-clock` | `Instant::now`, `SystemTime` | all critical crates |
//! | `thread-rng` | `thread_rng` | all critical crates |
//! | `default-hasher` | `HashMap`/`HashSet` built with the randomly-seeded default hasher | `crates/core` (plan-affecting) |
//! | `undocumented-unsafe` | an `unsafe` token with no `SAFETY:` / `# Safety` comment nearby | all critical crates |
//!
//! A site that is genuinely fine carries an escape on its own line or the
//! line above:
//!
//! ```text
//! // lint: allow(wall-clock) — gated on an explicit opt-in time budget.
//! ```
//!
//! The justification after the rule is mandatory; a bare `allow` is
//! itself reported. Matching is lexical: string literals and comments are
//! excluded from code, so a doc mention of `Instant::now` never fires.
//!
//! Usage: `atlas-lint [workspace-root]` (default `.`). Exit 0 when clean,
//! 1 with findings (printed as `path:line: rule: message`, sorted), 2 on
//! usage or I/O errors.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose behavior feeds plan bytes, fingerprints, or samples.
const CRITICAL_CRATES: &[&str] = &[
    "crates/core",
    "crates/machine",
    "crates/statevec",
    "crates/sampler",
    "crates/serve",
    "crates/stabilizer",
    "crates/ilp",
];

/// The `default-hasher` rule only applies where hash iteration order can
/// reach plan bytes.
const HASHER_SCOPE: &str = "crates/core";

/// How many preceding lines a `SAFETY:` / `# Safety` comment may sit
/// above its `unsafe` token.
const SAFETY_WINDOW: usize = 6;

const USAGE: &str = "usage: atlas-lint [workspace-root]

Scans the determinism-critical crates (core, machine, statevec, sampler,
serve, stabilizer, ilp) for wall-clock reads, thread-local RNG, default
hashers in plan-affecting code, and undocumented unsafe. Escape hatch:
`// lint: allow(<rule>) — <justification>` on the line or the line above.";

/// One reported lint violation.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source file split into per-line (code, comment) halves: string and
/// char literal *contents* are blanked out of `code`, comment text goes
/// to `comment`.
struct SplitSource {
    lines: Vec<(String, String)>,
}

fn split_source(src: &str) -> SplitSource {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut lines: Vec<(String, String)> = vec![(String::new(), String::new())];
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push((String::new(), String::new()));
            i += 1;
            continue;
        }
        let (code, comment) = lines.last_mut().expect("at least one line");
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                '"' => {
                    code.push('"');
                    state = State::Str;
                }
                'r' | 'b' => {
                    // Possible raw (byte) string: r"..", r#".."#, br".."
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if c != 'b' || j > i + 1 {
                        if chars.get(j) == Some(&'"') {
                            code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    } else if chars.get(j) == Some(&'"') {
                        // b"..."
                        code.push('"');
                        state = State::Str;
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a backslash or a
                    // one-char-then-quote sequence is a literal.
                    let next = chars.get(i + 1);
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(&ch) => chars.get(i + 2) == Some(&'\'') && ch != '\'',
                        None => false,
                    };
                    if is_literal {
                        // Skip to the closing quote (escape-aware).
                        let mut j = i + 1;
                        while j < chars.len() && chars[j] != '\'' {
                            if chars[j] == '\\' {
                                j += 1;
                            }
                            j += 1;
                        }
                        code.push('\'');
                        i = j + 1;
                        continue;
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            },
            State::LineComment => comment.push(c),
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
            }
            State::Str => match c {
                '\\' => {
                    i += 2;
                    continue;
                }
                '"' => {
                    code.push('"');
                    state = State::Code;
                }
                _ => {}
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    SplitSource { lines }
}

/// Whether `needle` occurs in `hay` as a standalone word (no identifier
/// character on either side).
fn word_match(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after_ok = end == hay.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The allow-escape state for `rule` at line `i` (0-based): `None` when no
/// escape is present, `Some(true)` when an escape with a justification
/// covers the line, `Some(false)` for a bare escape.
fn allow_escape(split: &SplitSource, i: usize, rule: &str) -> Option<bool> {
    let lines_to_check = [Some(i), i.checked_sub(1)];
    for li in lines_to_check.into_iter().flatten() {
        let comment = &split.lines[li].1;
        let marker = format!("lint: allow({rule})");
        if let Some(pos) = comment.find(&marker) {
            let rest = comment[pos + marker.len()..]
                .trim_start_matches([' ', '\t', '—', '-', ':', ','])
                .trim();
            return Some(rest.len() >= 8);
        }
    }
    None
}

/// Records a finding unless an allow-escape with a justification covers
/// the line; a bare escape is reported as its own problem.
fn report(
    findings: &mut Vec<Finding>,
    split: &SplitSource,
    file: &str,
    i: usize,
    rule: &'static str,
    message: String,
) {
    match allow_escape(split, i, rule) {
        Some(true) => {}
        Some(false) => findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule,
            message: format!("`lint: allow({rule})` needs a justification after the rule name"),
        }),
        None => findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule,
            message,
        }),
    }
}

/// Lints one file's source. `hasher_scope` enables the `default-hasher`
/// rule (plan-affecting modules only).
fn lint_source(file: &str, src: &str, hasher_scope: bool) -> Vec<Finding> {
    let split = split_source(src);
    let mut findings = Vec::new();
    for i in 0..split.lines.len() {
        let code = split.lines[i].0.as_str();
        if code.contains("Instant::now") {
            report(
                &mut findings,
                &split,
                file,
                i,
                "wall-clock",
                "`Instant::now` makes behavior depend on real time".to_string(),
            );
        }
        if word_match(code, "SystemTime") {
            report(
                &mut findings,
                &split,
                file,
                i,
                "wall-clock",
                "`SystemTime` makes behavior depend on real time".to_string(),
            );
        }
        if word_match(code, "thread_rng") {
            report(
                &mut findings,
                &split,
                file,
                i,
                "thread-rng",
                "`thread_rng` draws OS entropy; use the seeded workspace RNG".to_string(),
            );
        }
        if hasher_scope
            && !code.contains("BuildHasherDefault")
            && (word_match(code, "HashMap") || word_match(code, "HashSet"))
            && (code.contains("::new(")
                || code.contains("::default(")
                || code.contains("::with_capacity(")
                || code.contains("Default::default(")
                || code.contains("::from("))
        {
            report(
                &mut findings,
                &split,
                file,
                i,
                "default-hasher",
                "default-hasher container in plan-affecting code; use `DetMap`/`DetSet`"
                    .to_string(),
            );
        }
        if word_match(code, "unsafe") {
            let lo = i.saturating_sub(SAFETY_WINDOW);
            let documented = (lo..=i).any(|li| {
                let c = &split.lines[li].1;
                c.contains("SAFETY:") || c.contains("# Safety")
            });
            if !documented {
                report(
                    &mut findings,
                    &split,
                    file,
                    i,
                    "undocumented-unsafe",
                    "`unsafe` without a `SAFETY:` comment within 6 lines".to_string(),
                );
            }
        }
    }
    findings
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for krate in CRITICAL_CRATES {
        let dir = root.join(krate).join("src");
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        for path in files {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            findings.extend(lint_source(&label, &src, krate == &HASHER_SCOPE));
            scanned += 1;
        }
    }
    if scanned == 0 {
        return Err(format!(
            "no critical crates found under {} (pass the workspace root)",
            root.display()
        ));
    }
    findings.sort();
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.len() > 1 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let root = PathBuf::from(args.first().map(String::as_str).unwrap_or("."));
    match run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("atlas-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            let mut out = String::new();
            for f in &findings {
                let _ = writeln!(out, "{f}");
            }
            print!("{out}");
            println!("atlas-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("atlas-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<&'static str> {
        lint_source("fixture.rs", src, true)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    /// Regression fixture for the lint's first real catch: the ILP
    /// branch-and-bound read the wall clock unconditionally, so the
    /// *default* deterministic path observed real time on every solve
    /// (fixed in `crates/ilp/src/solver.rs:276` by gating the read on an
    /// explicit `time_limit`).
    #[test]
    fn catches_unconditional_wall_clock_read() {
        let src = "fn solve() {\n    let start = Instant::now();\n}\n";
        let f = lint_source("solver.rs", src, false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "// lint: allow(wall-clock) — gated on an explicit opt-in time budget.\n\
                   let start = config.time_limit.map(|_| Instant::now());\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn bare_allow_is_itself_reported() {
        let src = "// lint: allow(wall-clock)\nlet t = Instant::now();\n";
        let f = lint_source("fixture.rs", src, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("justification"));
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// Instant::now is banned here\nlet s = \"Instant::now\";\n\
                   let r = r#\"SystemTime goes \"here\"\"#;\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn char_literal_quote_does_not_corrupt_string_state() {
        // A '"' char literal must not open a string that would swallow
        // the Instant::now on the next line.
        let src = "let q = '\"';\nlet t = Instant::now();\n";
        assert_eq!(rules(src), vec!["wall-clock"]);
    }

    #[test]
    fn system_time_and_thread_rng_fire() {
        assert_eq!(
            rules("let t = SystemTime::now();\nlet r = thread_rng();\n"),
            vec!["wall-clock", "thread-rng"]
        );
    }

    #[test]
    fn default_hasher_only_in_scope() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(rules(src), vec!["default-hasher"]);
        assert!(lint_source("fixture.rs", src, false).is_empty());
        // Fixed-seed hashers are the sanctioned replacement.
        let det = "type DetMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;\n\
                   let m = DetMap::default();\n";
        assert!(rules(det).is_empty());
    }

    #[test]
    fn undocumented_unsafe_fires_and_safety_comment_suppresses() {
        assert_eq!(
            rules("unsafe { ptr.read() };\n"),
            vec!["undocumented-unsafe"]
        );
        assert!(
            rules("// SAFETY: index is owned by this worker.\nunsafe { ptr.read() };\n").is_empty()
        );
        assert!(
            rules("/// # Safety\n/// Caller owns the index.\nunsafe fn read() {}\n").is_empty()
        );
    }

    #[test]
    fn unsafe_in_lint_attributes_is_not_a_token_match() {
        assert!(rules("#![deny(unsafe_op_in_unsafe_fn)]\n#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If 'a were lexed as an open char literal the unsafe token on
        // the same line would be swallowed.
        let src = "fn f<'a>(x: &'a u8) { unsafe { g(x) } }\n";
        assert_eq!(rules(src), vec!["undocumented-unsafe"]);
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment: Instant::now */\nlet x = 1;\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn the_workspace_is_clean() {
        // The lint's own acceptance bar: the critical crates carry no
        // unescaped findings. CARGO_MANIFEST_DIR is the workspace root
        // (the lint lives in the root package).
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let findings = run(&root).expect("critical crates present");
        assert!(
            findings.is_empty(),
            "lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
