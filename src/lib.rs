//! # Atlas — hierarchical partitioning for quantum circuit simulation
//!
//! A Rust reproduction of *"Atlas: Hierarchical Partitioning for Quantum
//! Circuit Simulation on GPUs"* (Xu, Cao, Miao, Acar, Jia — SC 2024):
//! Schrödinger-style state-vector simulation that partitions a circuit
//! into **stages** (an ILP minimizing inter-device communication, §IV) and
//! each stage into **kernels** (a dynamic program over fusion and
//! shared-memory kernels, §V), executed over a multi-node multi-GPU
//! machine — here a calibrated simulated cluster, since this build targets
//! hosts without GPUs (see `DESIGN.md` for the substitution table).
//!
//! ## Quick start
//!
//! ```
//! use atlas::prelude::*;
//!
//! // A 10-qubit GHZ circuit on a simulated 2-node × 2-GPU cluster with
//! // 7 local qubits per GPU.
//! let circuit = atlas::circuit::generators::ghz(10);
//! let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: 7 };
//! let cfg = AtlasConfig::for_validation();
//! let out = simulate(&circuit, spec, CostModel::default(), &cfg, false).unwrap();
//! let state = out.state.unwrap();
//! assert!((state.probability(0) - 0.5).abs() < 1e-9);
//! assert!((state.probability((1 << 10) - 1) - 0.5).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`qmath`] | complex numbers, dense matrices, bit/index utilities |
//! | [`circuit`] | gate set, insular-qubit classification, benchmark generators |
//! | [`ilp`] | from-scratch binary ILP branch-and-bound solver |
//! | [`statevec`] | state-vector kernels (general/specialized/fused/batched) |
//! | [`machine`] | simulated multi-node multi-GPU cluster + cost model |
//! | [`core`] | staging ILP, kernelization DP, EXECUTE/SIMULATE |
//! | [`baselines`] | HyQuas-, cuQuantum-, Qiskit-, QDAO-like comparators |

pub use atlas_baselines as baselines;
pub use atlas_circuit as circuit;
pub use atlas_core as core;
pub use atlas_ilp as ilp;
pub use atlas_machine as machine;
pub use atlas_qmath as qmath;
pub use atlas_statevec as statevec;

/// The names most programs need.
pub mod prelude {
    pub use atlas_circuit::{generators::Family, Circuit, Gate, GateKind};
    pub use atlas_core::config::{AtlasConfig, KernelAlgo, StagingAlgo};
    pub use atlas_core::simulate::{simulate, SimulationOutput};
    pub use atlas_machine::{CostModel, MachineSpec};
    pub use atlas_qmath::Complex64;
    pub use atlas_statevec::{simulate_reference, StateVector};
}
