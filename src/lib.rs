//! # Atlas — hierarchical partitioning for quantum circuit simulation
//!
//! The crate-level documentation below is the repository README verbatim,
//! so its quick-start examples run as doctests and CI catches any drift
//! between the README and the API.
#![doc = include_str!("../README.md")]

pub use atlas_analyze as analyze;
pub use atlas_baselines as baselines;
pub use atlas_circuit as circuit;
pub use atlas_core as core;
pub use atlas_ilp as ilp;
pub use atlas_machine as machine;
pub use atlas_qmath as qmath;
pub use atlas_sampler as sampler;
pub use atlas_serve as serve;
pub use atlas_stabilizer as stabilizer;
pub use atlas_statevec as statevec;
pub use atlas_telemetry as telemetry;

/// The names most programs need.
pub mod prelude {
    pub use atlas_circuit::{generators::Family, Circuit, Gate, GateKind};
    pub use atlas_core::backend::{BackendPlan, BackendRun, SimulatorBackend};
    pub use atlas_core::config::{
        AtlasConfig, AtlasConfigBuilder, BackendKind, KernelAlgo, MemoryBudget, StagingAlgo,
    };
    pub use atlas_core::session::{CircuitFingerprint, CompiledPlan, Execution, Planner};
    pub use atlas_core::simulate::{simulate, SimulationOutput};
    pub use atlas_error::AtlasError;
    pub use atlas_machine::{CostModel, MachineSpec};
    pub use atlas_qmath::Complex64;
    pub use atlas_sampler::{Measurements, PauliString};
    pub use atlas_statevec::{simulate_reference, StateVector};
    pub use atlas_telemetry::{MetricsRegistry, Recorder, TraceFormat, TraceMeta};
}
