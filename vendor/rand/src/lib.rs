//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this vendored shim
//! provides exactly the rand **0.9** API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`], and [`Rng::random_bool`]. The generator is
//! SplitMix64 — deterministic across platforms, which is what the seeded
//! benchmark-circuit generators and property tests need. Swap this crate
//! for the real `rand` in `[workspace.dependencies]` once the registry is
//! reachable; no call sites change.

use std::ops::Range;

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds (only the `seed_from_u64` entry point is used
/// in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample of a primitive over its full domain.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable over their full domain via [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        let x = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        // Rounding in f32 can land exactly on `end`; keep the range
        // half-open.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographic — but the workspace only uses seeded RNGs for
    /// reproducible benchmark circuits and randomized tests, where
    /// cross-platform determinism matters more than statistical depth.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-4i32..5);
            assert!((-4..5).contains(&x));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(3usize..12);
            assert!((3..12).contains(&u));
            let g = rng.random_range(-1.0f32..0.0);
            assert!((-1.0..0.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
