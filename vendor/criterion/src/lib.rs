//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! and `Bencher::{iter, iter_batched, iter_batched_ref}` — as a plain
//! wall-clock harness: warm-up for the configured duration, then repeat
//! samples until the measurement budget is spent, reporting min / mean /
//! max per-iteration time. No statistical analysis, plots, or saved
//! baselines; swap in real criterion via `[workspace.dependencies]` when
//! the registry is reachable.

use std::time::{Duration, Instant};

/// How batched inputs are grouped. The shim runs one input per iteration
/// regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Top-level harness handle; hand it to the functions named in
/// [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    config: BenchConfig,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            _criterion: self,
            name,
            config: BenchConfig::default(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config;
        run_bench(&id.into(), config, f);
        self
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: BenchConfig,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.config, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, config: BenchConfig, mut f: F) {
    let mut b = Bencher {
        config,
        samples: Vec::new(),
        warmed_up: false,
    };
    // Warm-up pass: run the closure without recording.
    f(&mut b);
    b.warmed_up = true;
    b.samples.clear();
    f(&mut b);
    report(id, &b.samples);
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<44} [{} {} {}]  ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to each bench closure; records per-iteration timings.
pub struct Bencher {
    config: BenchConfig,
    samples: Vec<Duration>,
    warmed_up: bool,
}

impl Bencher {
    fn budget(&self) -> (usize, Duration) {
        if self.warmed_up {
            (self.config.sample_size, self.config.measurement_time)
        } else {
            // Warm-up: a couple of iterations bounded by warm_up_time.
            (2, self.config.warm_up_time)
        }
    }

    /// Time `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (samples, budget) = self.budget();
        let start = Instant::now();
        for _ in 0..samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }

    /// Time `routine(input)` with setup excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let (samples, budget) = self.budget();
        let start = Instant::now();
        for _ in 0..samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }

    /// Like [`iter_batched`](Self::iter_batched) but hands the routine a
    /// mutable reference (input dropped outside the timing window).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let (samples, budget) = self.budget();
        let start = Instant::now();
        for _ in 0..samples {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }
}

/// `criterion_group!(name, fn1, fn2, ...)` — declares `fn name()` that
/// runs each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)` — declares `fn main()`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        g.bench_function("counts", |b| b.iter(|| ran += 1));
        g.finish();
        // Warm-up + measurement both execute the routine.
        assert!(ran >= 3, "routine ran {ran} times");
    }

    #[test]
    fn iter_batched_ref_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(4)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        g.bench_function("fresh", |b| {
            b.iter_batched_ref(
                || vec![0u8; 8],
                |v| {
                    assert!(v.iter().all(|&x| x == 0), "input was reused");
                    v[0] = 1;
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
