//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's tests use — [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`any`], `collection::vec`, the
//! [`proptest!`] / [`prop_assert!`] macros, and `ProptestConfig::with_cases`
//! — on a deterministic seeded runner.
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! reproducible CI:
//!
//! * **No shrinking.** A failure reports the case number and the exact
//!   seed; rerun with `PROPTEST_SEED=<seed>` to reproduce case 0 as that
//!   case.
//! * **Deterministic by default.** Case `i` of every test derives its RNG
//!   from a fixed base seed (overridable via `PROPTEST_SEED`), so CI runs
//!   are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error carried out of a failed test case (`prop_assert!` returns this).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a seeded generator.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

/// Full-domain strategy for primitives, the target of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty length range in collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The base seed: `PROPTEST_SEED` env var if set, else a fixed constant so
/// CI is reproducible run-to-run.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x41_544c_4153_u64) // "ATLAS"
}

/// Per-case RNG seed. Case 0 uses the base verbatim, so rerunning with
/// `PROPTEST_SEED=<reported seed>` regenerates a failing case exactly as
/// case 0 — the reproduction contract the failure messages advertise.
pub fn case_seed(base: u64, case: u32) -> u64 {
    base ^ (case as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .rotate_left(17)
}

/// Drives one `proptest!`-generated test: `cases` deterministic cases, each
/// seeded from `(base_seed, case_index)`.
pub fn run_proptest<S, F>(config: &ProptestConfig, test_name: &str, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let base = base_seed();
    for case in 0..config.cases {
        let seed = case_seed(base, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.new_value(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest {test_name}: case {case}/{} failed (PROPTEST_SEED={seed} reproduces it as case 0): {e}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest {test_name}: case {case}/{} panicked (PROPTEST_SEED={seed} reproduces it as case 0)",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Subset of `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// The `proptest!` macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_proptest`] over the tuple of
/// strategies. Attributes on the inner fns (including `#[test]` and doc
/// comments) are preserved.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(
                    &config,
                    stringify!($name),
                    ($($strategy,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)` — returns a
/// [`TestCaseError`] instead of panicking so the runner can attach the
/// reproducing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            x in 0u32..10,
            pair in (0usize..4, -1.0f64..1.0),
        ) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_respects_length(
            v in collection::vec(any::<u64>(), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn prop_map_applies(
            doubled in (0u32..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::{base_seed, Strategy};
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (0u64..1_000_000, -3.0f64..3.0);
        let mut r1 = StdRng::seed_from_u64(base_seed());
        let mut r2 = StdRng::seed_from_u64(base_seed());
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut r1).0, strat.new_value(&mut r2).0);
        }
    }

    #[test]
    fn reported_seed_reproduces_as_case_zero() {
        use crate::{case_seed, Strategy};
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (0u64..u64::MAX, -3.0f64..3.0);
        for case in [0u32, 1, 7, 23] {
            let failing_seed = case_seed(0x1234_5678, case);
            // Rerun with PROPTEST_SEED=failing_seed: case 0 must see the
            // same RNG stream, hence the same generated value.
            assert_eq!(case_seed(failing_seed, 0), failing_seed);
            let a = strat.new_value(&mut StdRng::seed_from_u64(failing_seed));
            let b = strat.new_value(&mut StdRng::seed_from_u64(case_seed(failing_seed, 0)));
            assert_eq!(a.0, b.0);
        }
    }

    #[test]
    #[should_panic(expected = "PROPTEST_SEED")]
    fn failure_reports_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(4),
            "always_fails",
            0u32..10,
            |_| Err(TestCaseError::fail("forced")),
        );
    }
}
